#include "constellation/rgt.h"

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "util/expects.h"

#include "astro/ground_track.h"
#include "geo/geodesy.h"
#include "util/angles.h"

namespace ssplane::constellation {
namespace {

TEST(Rgt, FifteenToOneAltitude)
{
    const auto d = design_rgt(15, 1, deg2rad(65.0));
    ASSERT_TRUE(d.has_value());
    // J2-adjusted 15:1 at 65 degrees sits near 519 km (mean-radius altitude).
    EXPECT_NEAR(d->altitude_m / 1000.0, 518.7, 3.0);
    EXPECT_EQ(d->revolutions, 15);
    EXPECT_EQ(d->days, 1);
}

TEST(Rgt, ResonanceConditionHolds)
{
    for (const auto& [j, k] : std::vector<std::pair<int, int>>{
             {15, 1}, {14, 1}, {13, 1}, {29, 2}, {43, 3}}) {
        const auto d = design_rgt(j, k, deg2rad(65.0));
        ASSERT_TRUE(d.has_value()) << j << ":" << k;
        // j nodal periods == k nodal days to high relative accuracy.
        const double lhs = static_cast<double>(j) * d->nodal_period_s;
        const double rhs = static_cast<double>(k) * d->nodal_day_s;
        EXPECT_NEAR(lhs / rhs, 1.0, 1e-9) << j << ":" << k;
        EXPECT_NEAR(d->repeat_period_s, rhs, 1e-3);
    }
}

TEST(Rgt, AltitudeDecreasesWithMoreRevolutions)
{
    const auto d15 = design_rgt(15, 1, deg2rad(65.0));
    const auto d14 = design_rgt(14, 1, deg2rad(65.0));
    const auto d13 = design_rgt(13, 1, deg2rad(65.0));
    ASSERT_TRUE(d15 && d14 && d13);
    EXPECT_LT(d15->altitude_m, d14->altitude_m);
    EXPECT_LT(d14->altitude_m, d13->altitude_m);
}

TEST(Rgt, OutOfRangeReturnsNullopt)
{
    // 16:1 sits near 250 km -> outside [400, 2100] km.
    EXPECT_FALSE(design_rgt(16, 1, deg2rad(65.0), 400.0e3, 2100.0e3).has_value());
    // 10:1 sits above 2500 km.
    EXPECT_FALSE(design_rgt(10, 1, deg2rad(65.0), 400.0e3, 2100.0e3).has_value());
}

TEST(Rgt, EnumerationIsCoprimeAndSorted)
{
    const auto designs = enumerate_rgts(deg2rad(65.0), 400.0e3, 2100.0e3, 3);
    ASSERT_GT(designs.size(), 10u);
    for (std::size_t i = 0; i < designs.size(); ++i) {
        EXPECT_EQ(std::gcd(designs[i].revolutions, designs[i].days), 1);
        if (i > 0) {
            EXPECT_GE(designs[i].altitude_m, designs[i - 1].altitude_m);
        }
        EXPECT_GE(designs[i].altitude_m, 400.0e3);
        EXPECT_LE(designs[i].altitude_m, 2100.0e3);
    }
}

TEST(Rgt, ExactlyThreeNonUniformOneDayResonances)
{
    // Paper §2.2: "only three of the possible RGTs at LEO do not
    // automatically provide uniform global coverage" — the one-day
    // resonances 15:1, 14:1 and 13:1 at the default 30° minimum elevation.
    const auto designs = enumerate_rgts(deg2rad(65.0), 400.0e3, 2100.0e3, 3);
    int non_uniform = 0;
    for (const auto& d : designs) {
        const auto sizing = size_rgt_track_coverage(d);
        if (!sizing.gives_uniform_coverage) {
            ++non_uniform;
            EXPECT_EQ(d.days, 1);
            EXPECT_GE(d.revolutions, 13);
            EXPECT_LE(d.revolutions, 15);
        }
    }
    EXPECT_EQ(non_uniform, 3);
}

TEST(Rgt, ThirteenToOneSizingNearPaperValue)
{
    // Paper: covering the ~1215 km RGT takes >= 356 satellites.
    const auto d = design_rgt(13, 1, deg2rad(65.0));
    ASSERT_TRUE(d.has_value());
    const auto sizing = size_rgt_track_coverage(*d);
    EXPECT_GT(sizing.n_satellites, 300);
    EXPECT_LT(sizing.n_satellites, 480);
    EXPECT_FALSE(sizing.gives_uniform_coverage);
}

TEST(Rgt, TrackLengthScalesWithRevolutions)
{
    const auto d15 = design_rgt(15, 1, deg2rad(65.0));
    const auto d13 = design_rgt(13, 1, deg2rad(65.0));
    ASSERT_TRUE(d15 && d13);
    const auto s15 = size_rgt_track_coverage(*d15);
    const auto s13 = size_rgt_track_coverage(*d13);
    // ~2*pi per revolution, reduced slightly by Earth rotation.
    EXPECT_NEAR(s15.track_length_rad / (15.0 * two_pi), 0.97, 0.05);
    EXPECT_NEAR(s13.track_length_rad / (13.0 * two_pi), 0.97, 0.05);
}

TEST(Rgt, ServiceSwathRespectsCaps)
{
    const auto d = design_rgt(29, 2, deg2rad(65.0));
    ASSERT_TRUE(d.has_value());
    rgt_coverage_options opts;
    const auto sizing = size_rgt_track_coverage(*d, opts);
    EXPECT_LE(sizing.service_half_width_rad,
              opts.service_swath_fraction * sizing.footprint_half_angle_rad + 1e-12);
    EXPECT_LE(sizing.service_half_width_rad, sizing.pass_spacing_rad / 2.0 + 1e-12);
    EXPECT_GT(sizing.n_satellites, 0);
}

TEST(Rgt, SatellitesOnTrackShareGroundTrack)
{
    // The delayed-orbit family: satellite m at time t+tau_m flies over the
    // same ground point satellite 0 flew over at time t.
    const auto d = design_rgt(15, 1, deg2rad(65.0));
    ASSERT_TRUE(d.has_value());
    const astro::instant epoch = astro::instant::j2000();
    const int n = 4;
    const auto sats = satellites_on_track(*d, n, epoch);
    ASSERT_EQ(sats.size(), 4u);

    const astro::j2_propagator ref(sats[0].elements, epoch);
    for (int m = 1; m < n; ++m) {
        const double tau = d->repeat_period_s * m / n;
        const astro::j2_propagator follower(sats[static_cast<std::size_t>(m)].elements,
                                            epoch);
        for (double t_off : {1000.0, 20000.0, 50000.0}) {
            const astro::instant t0 = epoch.plus_seconds(t_off);
            const astro::instant tm = t0.plus_seconds(tau);
            const auto g_ref = astro::subsatellite_point(ref.state_at(t0).position_m, t0);
            const auto g_fol =
                astro::subsatellite_point(follower.state_at(tm).position_m, tm);
            const double separation_rad = geo::central_angle_rad(
                g_ref.latitude_deg, g_ref.longitude_deg, g_fol.latitude_deg,
                g_fol.longitude_deg);
            EXPECT_LT(rad2deg(separation_rad), 0.25)
                << "sat " << m << " at offset " << t_off;
        }
    }
}

TEST(Rgt, Validation)
{
    EXPECT_THROW(design_rgt(0, 1, 1.0), contract_violation);
    EXPECT_THROW(design_rgt(15, 0, 1.0), contract_violation);
    EXPECT_THROW(enumerate_rgts(1.0, 400.0e3, 2000.0e3, 0), contract_violation);
    const auto d = design_rgt(15, 1, deg2rad(65.0));
    ASSERT_TRUE(d.has_value());
    EXPECT_THROW(satellites_on_track(*d, 0, astro::instant::j2000()),
                 contract_violation);
}

} // namespace
} // namespace ssplane::constellation
