#include "constellation/sun_sync.h"

#include <cmath>

#include <gtest/gtest.h>

#include "astro/ground_track.h"
#include "util/angles.h"
#include "util/expects.h"

namespace ssplane::constellation {
namespace {

TEST(SunSync, PublishedInclinations)
{
    // Textbook sun-synchronous inclinations (circular orbits).
    const auto i560 = sun_synchronous_inclination_rad(560.0e3);
    const auto i800 = sun_synchronous_inclination_rad(800.0e3);
    ASSERT_TRUE(i560 && i800);
    EXPECT_NEAR(rad2deg(*i560), 97.6, 0.15);
    EXPECT_NEAR(rad2deg(*i800), 98.6, 0.15);
}

TEST(SunSync, InclinationGrowsWithAltitude)
{
    double prev = 0.0;
    for (double h = 300.0e3; h <= 2000.0e3; h += 100.0e3) {
        const auto i = sun_synchronous_inclination_rad(h);
        ASSERT_TRUE(i.has_value());
        EXPECT_GT(rad2deg(*i), 90.0);
        EXPECT_GT(*i, prev);
        prev = *i;
    }
}

TEST(SunSync, NoSolutionAtVeryHighAltitude)
{
    EXPECT_FALSE(sun_synchronous_inclination_rad(8000.0e3).has_value());
    EXPECT_THROW(sun_synchronous_inclination_rad(-5.0), contract_violation);
}

TEST(SunSync, LtanRaanRoundTrip)
{
    const astro::instant t = astro::instant::from_calendar(2016, 3, 21, 8);
    for (double ltan : {0.0, 6.0, 10.5, 12.0, 13.5, 18.0, 22.0}) {
        const double raan = raan_for_ltan_rad(ltan, t);
        EXPECT_NEAR(hour_difference(ltan_of_raan_h(raan, t), ltan), 0.0, 1e-9);
    }
}

TEST(SunSync, NoonLtanFacesTheMeanSun)
{
    const astro::instant t = astro::instant::from_calendar(2019, 7, 1);
    const double raan = raan_for_ltan_rad(12.0, t);
    EXPECT_NEAR(wrap_pi(raan - astro::mean_sun_right_ascension_rad(t)), 0.0, 1e-12);
}

TEST(SunSync, PlaneGeneration)
{
    ss_plane plane;
    plane.altitude_m = 560.0e3;
    plane.ltan_h = 13.5;
    plane.n_sats = 8;
    const auto epoch = astro::instant::j2000();
    const auto sats = make_ss_plane(plane, epoch);
    ASSERT_EQ(sats.size(), 8u);
    const double expected_inclination = *sun_synchronous_inclination_rad(560.0e3);
    for (int s = 0; s < 8; ++s) {
        EXPECT_DOUBLE_EQ(sats[static_cast<std::size_t>(s)].elements.inclination_rad,
                         expected_inclination);
        EXPECT_NEAR(sats[static_cast<std::size_t>(s)].elements.mean_anomaly_rad,
                    wrap_two_pi(s * two_pi / 8.0), 1e-12);
        EXPECT_EQ(sats[static_cast<std::size_t>(s)].slot, s);
    }
}

TEST(SunSync, ConstellationConcatenatesPlanes)
{
    std::vector<ss_plane> planes;
    planes.push_back({560.0e3, 10.0, 3, 0.0});
    planes.push_back({560.0e3, 14.0, 5, 0.1});
    const auto sats = make_ss_constellation(planes, astro::instant::j2000());
    ASSERT_EQ(sats.size(), 8u);
    EXPECT_EQ(sats[0].plane, 0);
    EXPECT_EQ(sats[2].plane, 0);
    EXPECT_EQ(sats[3].plane, 1);
    EXPECT_EQ(sats[7].plane, 1);
}

TEST(SunSync, LtanStaysFixedOverMonths)
{
    // The defining property of the SS-plane primitive: the node's local
    // solar time is invariant as the seasons advance.
    ss_plane plane;
    plane.altitude_m = 560.0e3;
    plane.ltan_h = 10.5;
    plane.n_sats = 1;
    const auto epoch = astro::instant::j2000();
    const auto sats = make_ss_plane(plane, epoch);
    const astro::j2_propagator orbit(sats[0].elements, epoch);

    for (double days : {30.0, 90.0, 182.0, 365.0}) {
        const astro::instant t = epoch.plus_days(days);
        const double ltan = ltan_of_raan_h(orbit.elements_at(t).raan_rad, t);
        EXPECT_NEAR(hour_difference(ltan, 10.5), 0.0, 0.12) << "after " << days << " d";
    }
}

TEST(SunSync, NonSunSyncLtanDrifts)
{
    // Contrast: a 65-degree orbit's LTAN drifts by hours over half a year.
    const auto epoch = astro::instant::j2000();
    const astro::j2_propagator orbit(
        astro::circular_orbit(560.0e3, deg2rad(65.0), raan_for_ltan_rad(10.5, epoch), 0.0),
        epoch);
    const astro::instant t = epoch.plus_days(182.0);
    const double ltan = ltan_of_raan_h(orbit.elements_at(t).raan_rad, t);
    EXPECT_GT(std::abs(hour_difference(ltan, 10.5)), 2.0);
}

TEST(SunSync, Validation)
{
    ss_plane plane;
    plane.n_sats = 0;
    EXPECT_THROW(make_ss_plane(plane, astro::instant::j2000()), contract_violation);
    plane.n_sats = 1;
    plane.altitude_m = 9000.0e3; // no SS inclination exists
    EXPECT_THROW(make_ss_plane(plane, astro::instant::j2000()), contract_violation);
}

} // namespace
} // namespace ssplane::constellation
