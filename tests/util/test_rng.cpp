#include "util/rng.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/stats.h"

namespace ssplane {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    rng a(12345);
    rng b(12345);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge)
{
    rng a(1);
    rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next_u64() == b.next_u64()) ++same;
    EXPECT_LT(same, 2);
}

class RngSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedTest, UniformInUnitInterval)
{
    rng r(GetParam());
    for (int i = 0; i < 1000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST_P(RngSeedTest, UniformRangeRespectsBounds)
{
    rng r(GetParam());
    for (int i = 0; i < 1000; ++i) {
        const double u = r.uniform(-3.0, 7.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 7.0);
    }
}

TEST_P(RngSeedTest, UniformIntInclusiveBounds)
{
    rng r(GetParam());
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = r.uniform_int(0, 9);
        EXPECT_GE(v, 0);
        EXPECT_LE(v, 9);
        saw_lo |= (v == 0);
        saw_hi |= (v == 9);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST_P(RngSeedTest, NormalMoments)
{
    rng r(GetParam());
    std::vector<double> xs(20000);
    for (auto& x : xs) x = r.normal();
    EXPECT_NEAR(mean(xs), 0.0, 0.05);
    EXPECT_NEAR(stddev(xs), 1.0, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedTest, ::testing::Values(1u, 42u, 1234567u));

TEST(Rng, LognormalIsPositive)
{
    rng r(7);
    for (int i = 0; i < 1000; ++i) EXPECT_GT(r.lognormal(0.0, 1.0), 0.0);
}

TEST(Rng, ExponentialMeanMatchesRate)
{
    rng r(9);
    std::vector<double> xs(20000);
    for (auto& x : xs) x = r.exponential(2.0);
    EXPECT_NEAR(mean(xs), 0.5, 0.02);
}

TEST(Rng, ParetoRespectsMinimum)
{
    rng r(11);
    for (int i = 0; i < 1000; ++i) EXPECT_GE(r.pareto(3.0, 1.5), 3.0);
}

TEST(Rng, BernoulliFrequency)
{
    rng r(13);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        if (r.bernoulli(0.3)) ++hits;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ForkedStreamsAreIndependentAndStable)
{
    rng parent1(99);
    rng parent2(99);
    rng childa = parent1.fork(5);
    rng childb = parent2.fork(5);
    // Same parent state + same stream index -> identical child.
    for (int i = 0; i < 32; ++i) EXPECT_EQ(childa.next_u64(), childb.next_u64());

    rng parent3(99);
    rng child5 = parent3.fork(5);
    rng child6 = parent3.fork(6);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (child5.next_u64() == child6.next_u64()) ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, SplitIsDeterministicPerPurposeAndStep)
{
    rng a = rng::split(42, 1, 7);
    rng b = rng::split(42, 1, 7);
    for (int i = 0; i < 64; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, SplitStreamsDivergeAcrossPurposeStepAndSeed)
{
    // Every coordinate splits the stream: a shared prefix would mean two
    // scenario processes (or two steps of one process) see correlated
    // draws.
    const auto differs = [](rng x, rng y) {
        int same = 0;
        for (int i = 0; i < 64; ++i)
            if (x.next_u64() == y.next_u64()) ++same;
        return same < 2;
    };
    EXPECT_TRUE(differs(rng::split(42, 1, 7), rng::split(42, 2, 7)));
    EXPECT_TRUE(differs(rng::split(42, 1, 7), rng::split(42, 1, 8)));
    EXPECT_TRUE(differs(rng::split(42, 1, 7), rng::split(43, 1, 7)));
    // And the split streams are disjoint from the legacy direct stream the
    // static `sample_failures` draws still use.
    EXPECT_TRUE(differs(rng::split(42, 1, 0), rng(42)));
}

} // namespace
} // namespace ssplane
