#include "util/parallel.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace ssplane {
namespace {

/// Restore automatic sizing after each test.
class ParallelTest : public ::testing::Test {
protected:
    ~ParallelTest() override { set_thread_count(0); }
};

TEST_F(ParallelTest, CoversEveryIndexExactlyOnce)
{
    for (const unsigned threads : {1u, 4u}) {
        set_thread_count(threads);
        std::vector<std::atomic<int>> hits(1000);
        parallel_for(hits.size(), [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
        });
        for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
    }
}

TEST_F(ParallelTest, ZeroIterationsIsANoop)
{
    set_thread_count(4);
    bool called = false;
    parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST_F(ParallelTest, ChunkBoundariesIndependentOfThreadCount)
{
    const std::size_t n = 10000;
    const std::size_t chunk = 256;
    const auto boundaries_with = [&](unsigned threads) {
        set_thread_count(threads);
        std::vector<std::atomic<std::size_t>> begin_of(n);
        parallel_for(
            n,
            [&](std::size_t begin, std::size_t end) {
                for (std::size_t i = begin; i < end; ++i) begin_of[i].store(begin);
            },
            chunk);
        std::vector<std::size_t> out(n);
        for (std::size_t i = 0; i < n; ++i) out[i] = begin_of[i].load();
        return out;
    };
    EXPECT_EQ(boundaries_with(1), boundaries_with(5));
}

TEST_F(ParallelTest, MapPreservesIndexOrder)
{
    set_thread_count(4);
    const auto out =
        parallel_map<std::size_t>(500, [](std::size_t i) { return i * i; });
    for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST_F(ParallelTest, NestedCallsRunSerially)
{
    set_thread_count(4);
    std::atomic<int> total{0};
    parallel_for(8, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
            parallel_for(10, [&](std::size_t b, std::size_t e) {
                total.fetch_add(static_cast<int>(e - b));
            });
        }
    });
    EXPECT_EQ(total.load(), 80);
}

TEST_F(ParallelTest, PropagatesBodyException)
{
    set_thread_count(4);
    EXPECT_THROW(parallel_for(100,
                              [](std::size_t begin, std::size_t) {
                                  if (begin == 0) throw std::runtime_error("boom");
                              },
                              10),
                 std::runtime_error);
}

TEST_F(ParallelTest, ThreadCountOverrideAndRestore)
{
    set_thread_count(3);
    EXPECT_EQ(thread_count(), 3u);
    set_thread_count(0);
    EXPECT_GE(thread_count(), 1u);
}

} // namespace
} // namespace ssplane
