// Thread-pool stress suite, written for the ThreadSanitizer leg (cmake
// --preset tsan): many short parallel regions, concurrent parallel_for
// callers on distinct std::threads, nesting under load and exception
// delivery under contention. The assertions also hold in a plain build;
// under TSan any latent race in util/parallel turns into a hard failure.
#include "util/parallel.h"

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace ssplane {
namespace {

class ParallelStressTest : public ::testing::Test {
protected:
    ParallelStressTest() { set_thread_count(4); }
    ~ParallelStressTest() override { set_thread_count(0); }
};

TEST_F(ParallelStressTest, ManyShortRegionsBackToBack)
{
    // Hammer pool wakeup/teardown paths: lots of tiny regions, each with
    // its own completion latch.
    std::atomic<std::int64_t> total{0};
    for (int round = 0; round < 200; ++round) {
        parallel_for(
            64,
            [&](std::size_t begin, std::size_t end) {
                total.fetch_add(static_cast<std::int64_t>(end - begin),
                                std::memory_order_relaxed);
            },
            4);
    }
    EXPECT_EQ(total.load(), 200 * 64);
}

TEST_F(ParallelStressTest, ConcurrentCallersShareThePool)
{
    // parallel_for is documented safe for concurrent callers (only
    // set_thread_count may not race in-flight regions): every caller's
    // chunks must complete exactly once even when four outer std::threads
    // submit interleaved work.
    constexpr int n_callers = 4;
    constexpr int rounds = 50;
    constexpr std::size_t n = 257; // deliberately not a multiple of chunk
    std::vector<std::int64_t> per_caller(n_callers, 0);
    std::vector<std::thread> callers;
    callers.reserve(n_callers);
    for (int caller = 0; caller < n_callers; ++caller) {
        callers.emplace_back([caller, &per_caller] {
            std::int64_t local = 0;
            for (int round = 0; round < rounds; ++round) {
                std::atomic<std::int64_t> sum{0};
                parallel_for(
                    n,
                    [&](std::size_t begin, std::size_t end) {
                        std::int64_t chunk_sum = 0;
                        for (std::size_t i = begin; i < end; ++i)
                            chunk_sum += static_cast<std::int64_t>(i);
                        sum.fetch_add(chunk_sum, std::memory_order_relaxed);
                    },
                    16);
                local += sum.load();
            }
            per_caller[static_cast<std::size_t>(caller)] = local;
        });
    }
    for (auto& t : callers) t.join();
    const std::int64_t expected =
        rounds * (static_cast<std::int64_t>(n) * (n - 1) / 2);
    for (const std::int64_t got : per_caller) EXPECT_EQ(got, expected);
}

TEST_F(ParallelStressTest, NestedRegionsUnderConcurrentLoad)
{
    // Nested parallel_for degrades to serial inside a worker; exercise that
    // path while the pool is saturated from several outer regions.
    std::atomic<std::int64_t> total{0};
    parallel_for(
        32,
        [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) {
                parallel_for(100, [&](std::size_t b, std::size_t e) {
                    total.fetch_add(static_cast<std::int64_t>(e - b),
                                    std::memory_order_relaxed);
                });
            }
        },
        1);
    EXPECT_EQ(total.load(), 32 * 100);
}

TEST_F(ParallelStressTest, ParallelMapUnderConcurrentCallers)
{
    constexpr int n_callers = 3;
    std::vector<std::thread> callers;
    // Not vector<bool>: bit-packing would make disjoint writes race.
    std::vector<char> ok(n_callers, 0);
    for (int caller = 0; caller < n_callers; ++caller) {
        callers.emplace_back([caller, &ok] {
            bool all = true;
            for (int round = 0; round < 30; ++round) {
                const auto out = parallel_map<std::size_t>(
                    300, [](std::size_t i) { return i * 3; });
                for (std::size_t i = 0; i < out.size(); ++i)
                    all = all && out[i] == i * 3;
            }
            ok[static_cast<std::size_t>(caller)] = all ? 1 : 0;
        });
    }
    for (auto& t : callers) t.join();
    for (int caller = 0; caller < n_callers; ++caller)
        EXPECT_TRUE(ok[static_cast<std::size_t>(caller)]) << caller;
}

TEST_F(ParallelStressTest, ExceptionDeliveryUnderContention)
{
    // First-thrown-wins delivery must stay clean while other chunks of the
    // same region are still running.
    for (int round = 0; round < 50; ++round) {
        std::atomic<int> survivors{0};
        EXPECT_THROW(
            parallel_for(
                128,
                [&](std::size_t begin, std::size_t) {
                    if (begin % 32 == 0) throw std::runtime_error("boom");
                    survivors.fetch_add(1, std::memory_order_relaxed);
                },
                8),
            std::runtime_error);
        EXPECT_LE(survivors.load(), 128 / 8);
    }
}

} // namespace
} // namespace ssplane
