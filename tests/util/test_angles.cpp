#include "util/angles.h"

#include <cmath>

#include <gtest/gtest.h>

namespace ssplane {
namespace {

TEST(Angles, DegRadRoundTripIsExactEnough)
{
    for (double deg = -720.0; deg <= 720.0; deg += 7.3) {
        EXPECT_NEAR(rad2deg(deg2rad(deg)), deg, 1e-12);
    }
}

TEST(Angles, HoursRadRoundTrip)
{
    for (double h = -48.0; h <= 48.0; h += 0.7) {
        EXPECT_NEAR(rad2hours(hours2rad(h)), h, 1e-12);
    }
}

TEST(Angles, FifteenDegreesPerHour)
{
    EXPECT_NEAR(rad2deg(hours2rad(1.0)), 15.0, 1e-12);
    EXPECT_NEAR(rad2deg(hours2rad(24.0)), 360.0, 1e-12);
}

class WrapTest : public ::testing::TestWithParam<double> {};

TEST_P(WrapTest, WrapTwoPiInRange)
{
    const double w = wrap_two_pi(GetParam());
    EXPECT_GE(w, 0.0);
    EXPECT_LT(w, two_pi);
    // Wrapping preserves the angle modulo 2*pi.
    EXPECT_NEAR(std::remainder(w - GetParam(), two_pi), 0.0, 1e-9);
}

TEST_P(WrapTest, WrapPiInRange)
{
    const double w = wrap_pi(GetParam());
    EXPECT_GT(w, -pi - 1e-12);
    EXPECT_LE(w, pi + 1e-12);
    EXPECT_NEAR(std::remainder(w - GetParam(), two_pi), 0.0, 1e-9);
}

TEST_P(WrapTest, WrapDegreesConsistentWithRadians)
{
    const double deg = rad2deg(GetParam());
    EXPECT_NEAR(wrap_deg_360(deg), rad2deg(wrap_two_pi(GetParam())), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(SweepAngles, WrapTest,
                         ::testing::Values(-100.0, -7.0, -3.2, -0.1, 0.0, 0.1, 3.13,
                                           3.15, 6.28, 6.30, 50.0, 1000.0));

TEST(Angles, WrapHours)
{
    EXPECT_NEAR(wrap_hours_24(25.0), 1.0, 1e-12);
    EXPECT_NEAR(wrap_hours_24(-1.0), 23.0, 1e-12);
    EXPECT_NEAR(wrap_hours_24(24.0), 0.0, 1e-12);
    EXPECT_NEAR(wrap_hours_24(48.5), 0.5, 1e-12);
}

TEST(Angles, HourDifferenceIsShortestWay)
{
    EXPECT_NEAR(hour_difference(1.0, 23.0), 2.0, 1e-12);
    EXPECT_NEAR(hour_difference(23.0, 1.0), -2.0, 1e-12);
    EXPECT_NEAR(hour_difference(12.0, 0.0), 12.0, 1e-12);
    EXPECT_NEAR(hour_difference(6.0, 6.0), 0.0, 1e-12);
}

TEST(Angles, HourDifferenceAntisymmetricModulo24)
{
    for (double a = 0.0; a < 24.0; a += 1.7) {
        for (double b = 0.0; b < 24.0; b += 2.3) {
            const double d1 = hour_difference(a, b);
            const double d2 = hour_difference(b, a);
            EXPECT_NEAR(std::fmod(d1 + d2 + 48.0, 24.0), 0.0, 1e-9);
        }
    }
}

TEST(Angles, ClampAndSafeTrig)
{
    EXPECT_EQ(clamp(5.0, 0.0, 1.0), 1.0);
    EXPECT_EQ(clamp(-5.0, 0.0, 1.0), 0.0);
    EXPECT_EQ(clamp(0.5, 0.0, 1.0), 0.5);
    EXPECT_NO_THROW(safe_acos(1.0 + 1e-14));
    EXPECT_NEAR(safe_acos(1.0 + 1e-14), 0.0, 1e-6);
    EXPECT_NEAR(safe_asin(-1.0 - 1e-14), -pi / 2.0, 1e-6);
}

} // namespace
} // namespace ssplane
