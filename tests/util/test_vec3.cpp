#include "util/vec3.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/angles.h"

namespace ssplane {
namespace {

TEST(Vec3, BasicArithmetic)
{
    const vec3 a{1.0, 2.0, 3.0};
    const vec3 b{-1.0, 0.5, 2.0};
    EXPECT_EQ(a + b, vec3(0.0, 2.5, 5.0));
    EXPECT_EQ(a - b, vec3(2.0, 1.5, 1.0));
    EXPECT_EQ(a * 2.0, vec3(2.0, 4.0, 6.0));
    EXPECT_EQ(2.0 * a, a * 2.0);
    EXPECT_EQ(-a, vec3(-1.0, -2.0, -3.0));
}

TEST(Vec3, DotAndCrossIdentities)
{
    const vec3 a{1.0, 2.0, 3.0};
    const vec3 b{-2.0, 1.0, 0.5};
    // Cross product is perpendicular to both operands.
    EXPECT_NEAR(a.cross(b).dot(a), 0.0, 1e-12);
    EXPECT_NEAR(a.cross(b).dot(b), 0.0, 1e-12);
    // Anti-commutativity.
    EXPECT_EQ(a.cross(b), -(b.cross(a)));
    // Lagrange identity: |a x b|^2 = |a|^2 |b|^2 - (a.b)^2.
    EXPECT_NEAR(a.cross(b).norm_squared(),
                a.norm_squared() * b.norm_squared() - a.dot(b) * a.dot(b), 1e-9);
}

TEST(Vec3, NormalizedHasUnitLength)
{
    const vec3 v{3.0, -4.0, 12.0};
    EXPECT_NEAR(v.normalized().norm(), 1.0, 1e-12);
    EXPECT_EQ(vec3{}.normalized(), vec3{});
}

class RotationTest : public ::testing::TestWithParam<double> {};

TEST_P(RotationTest, RotationsPreserveNorm)
{
    const double angle = GetParam();
    const vec3 v{1.3, -0.7, 2.1};
    EXPECT_NEAR(rotate_x(v, angle).norm(), v.norm(), 1e-12);
    EXPECT_NEAR(rotate_y(v, angle).norm(), v.norm(), 1e-12);
    EXPECT_NEAR(rotate_z(v, angle).norm(), v.norm(), 1e-12);
}

TEST_P(RotationTest, RotateAboutZAxisMatchesRotateZ)
{
    const double angle = GetParam();
    const vec3 v{0.4, 1.1, -2.0};
    const vec3 a = rotate_z(v, angle);
    const vec3 b = rotate_about(v, {0.0, 0.0, 1.0}, angle);
    EXPECT_NEAR((a - b).norm(), 0.0, 1e-12);
}

TEST_P(RotationTest, InverseRotationRestores)
{
    const double angle = GetParam();
    const vec3 v{5.0, -3.0, 0.5};
    EXPECT_NEAR((rotate_x(rotate_x(v, angle), -angle) - v).norm(), 0.0, 1e-12);
    EXPECT_NEAR((rotate_z(rotate_z(v, angle), -angle) - v).norm(), 0.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(SweepAngles, RotationTest,
                         ::testing::Values(-3.0, -1.0, -0.3, 0.0, 0.2, 1.0, 2.5, 3.14,
                                           6.0));

TEST(Vec3, AngleBetween)
{
    EXPECT_NEAR(angle_between({1, 0, 0}, {0, 1, 0}), pi / 2.0, 1e-12);
    EXPECT_NEAR(angle_between({1, 0, 0}, {1, 0, 0}), 0.0, 1e-7);
    EXPECT_NEAR(angle_between({1, 0, 0}, {-1, 0, 0}), pi, 1e-7);
    // Scale invariance.
    EXPECT_NEAR(angle_between({2, 2, 0}, {0, 0, 5}), pi / 2.0, 1e-12);
}

TEST(Vec3, RotationComposition)
{
    // Rotating 90° about z maps x-hat to y-hat.
    const vec3 x{1, 0, 0};
    EXPECT_NEAR((rotate_z(x, pi / 2.0) - vec3{0, 1, 0}).norm(), 0.0, 1e-12);
    // Rotating 90° about x maps y-hat to z-hat.
    EXPECT_NEAR((rotate_x(vec3{0, 1, 0}, pi / 2.0) - vec3{0, 0, 1}).norm(), 0.0, 1e-12);
}

} // namespace
} // namespace ssplane
