#include <algorithm>
#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "util/cli.h"
#include "util/csv.h"
#include "util/expects.h"
#include "util/table.h"

namespace ssplane {
namespace {

TEST(Csv, HeaderAndRows)
{
    std::ostringstream out;
    csv_writer csv(out, {"a", "b"});
    csv.row({1.0, 2.5});
    csv.row({3.0, -4.0});
    EXPECT_EQ(out.str(), "a,b\n1,2.5\n3,-4\n");
    EXPECT_EQ(csv.rows_written(), 2u);
}

TEST(Csv, RowWidthMismatchThrows)
{
    std::ostringstream out;
    csv_writer csv(out, {"a", "b"});
    EXPECT_THROW(csv.row({1.0}), contract_violation);
    EXPECT_THROW(csv.row_text({"x", "y", "z"}), contract_violation);
}

TEST(Csv, EscapesTextCellsPerRfc4180)
{
    EXPECT_EQ(csv_escape("plain"), "plain");
    EXPECT_EQ(csv_escape("São Paulo"), "São Paulo");
    EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
    EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(csv_escape("two\nlines"), "\"two\nlines\"");

    std::ostringstream out;
    csv_writer csv(out, {"name", "v"});
    csv.row_text({"attack, 2 planes", "1"});
    EXPECT_EQ(out.str(), "name,v\n\"attack, 2 planes\",1\n");
}

TEST(Csv, FormatNumberCompact)
{
    EXPECT_EQ(format_number(1.0), "1");
    EXPECT_EQ(format_number(0.5), "0.5");
    EXPECT_EQ(format_number(1e9, 4), "1e+09");
    EXPECT_EQ(format_number(std::nan("")), "nan");
}

TEST(Table, AlignsColumns)
{
    table_printer t({"name", "value"});
    t.row({"x", "1"});
    t.row_numeric({2.0, 34.5});
    std::ostringstream out;
    t.print(out);
    const std::string s = out.str();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("34.5"), std::string::npos);
    // Header, separator and two rows.
    EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
}

TEST(Cli, ParsesOptionsAndPositional)
{
    const char* argv[] = {"prog", "--alpha=1.5", "--flag", "input.txt", "--name=x"};
    cli_args args(5, argv);
    EXPECT_TRUE(args.has("alpha"));
    EXPECT_TRUE(args.has("flag"));
    EXPECT_FALSE(args.has("missing"));
    EXPECT_DOUBLE_EQ(args.get_double("alpha", 0.0), 1.5);
    EXPECT_EQ(args.get("name", ""), "x");
    EXPECT_EQ(args.get_int("missing", 7), 7);
    ASSERT_EQ(args.positional().size(), 1u);
    EXPECT_EQ(args.positional()[0], "input.txt");
}

TEST(Cli, FallbacksOnUnparsable)
{
    const char* argv[] = {"prog", "--n=abc"};
    cli_args args(2, argv);
    EXPECT_EQ(args.get_int("n", -1), -1);
    EXPECT_EQ(args.get_double("n", 2.5), 2.5);
}

TEST(Expects, ThrowsWithMessage)
{
    try {
        expects(false, "my message");
        FAIL() << "expects should have thrown";
    } catch (const contract_violation& e) {
        EXPECT_STREQ(e.what(), "my message");
    }
    EXPECT_NO_THROW(expects(true));
    EXPECT_THROW(ensures(false), contract_violation);
}

} // namespace
} // namespace ssplane
