#include "util/stats.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "util/expects.h"

namespace ssplane {
namespace {

TEST(Stats, MeanAndStddev)
{
    const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    EXPECT_NEAR(mean(xs), 5.0, 1e-12);
    EXPECT_NEAR(stddev(xs), 2.138089935299395, 1e-9);
}

TEST(Stats, EmptySamplesAreZero)
{
    const std::vector<double> empty;
    EXPECT_EQ(mean(empty), 0.0);
    EXPECT_EQ(stddev(empty), 0.0);
    EXPECT_EQ(min_value(empty), 0.0);
    EXPECT_EQ(max_value(empty), 0.0);
    EXPECT_EQ(median(empty), 0.0);
}

TEST(Stats, PercentileInterpolates)
{
    const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
    EXPECT_NEAR(percentile(xs, 0.0), 1.0, 1e-12);
    EXPECT_NEAR(percentile(xs, 100.0), 4.0, 1e-12);
    EXPECT_NEAR(percentile(xs, 50.0), 2.5, 1e-12);
    EXPECT_NEAR(percentile(xs, 25.0), 1.75, 1e-12);
}

TEST(Stats, PercentileRejectsBadP)
{
    const std::vector<double> xs{1.0};
    EXPECT_THROW(percentile(xs, -1.0), contract_violation);
    EXPECT_THROW(percentile(xs, 101.0), contract_violation);
}

TEST(Stats, MedianUnsortedInput)
{
    const std::vector<double> xs{9.0, 1.0, 5.0};
    EXPECT_NEAR(median(xs), 5.0, 1e-12);
}

TEST(Stats, SummaryIsConsistent)
{
    std::vector<double> xs;
    for (int i = 1; i <= 100; ++i) xs.push_back(static_cast<double>(i));
    const auto s = summarize(xs);
    EXPECT_EQ(s.count, 100u);
    EXPECT_NEAR(s.mean, 50.5, 1e-12);
    EXPECT_EQ(s.min, 1.0);
    EXPECT_EQ(s.max, 100.0);
    EXPECT_NEAR(s.median, 50.5, 1e-12);
    EXPECT_LE(s.p25, s.median);
    EXPECT_LE(s.median, s.p75);
    EXPECT_LE(s.p75, s.p95);
}

TEST(Stats, LinspaceEndpointsAndSpacing)
{
    const auto xs = linspace(0.0, 10.0, 11);
    ASSERT_EQ(xs.size(), 11u);
    EXPECT_EQ(xs.front(), 0.0);
    EXPECT_EQ(xs.back(), 10.0);
    for (std::size_t i = 1; i < xs.size(); ++i)
        EXPECT_NEAR(xs[i] - xs[i - 1], 1.0, 1e-12);
}

TEST(Stats, LogspaceEndpointsAndRatio)
{
    const auto xs = logspace(1.0, 1000.0, 4);
    ASSERT_EQ(xs.size(), 4u);
    EXPECT_NEAR(xs[0], 1.0, 1e-9);
    EXPECT_NEAR(xs[1], 10.0, 1e-9);
    EXPECT_NEAR(xs[2], 100.0, 1e-9);
    EXPECT_NEAR(xs[3], 1000.0, 1e-9);
}

TEST(Stats, LinspaceLogspaceValidation)
{
    EXPECT_THROW(linspace(0.0, 1.0, 1), contract_violation);
    EXPECT_THROW(logspace(0.0, 1.0, 3), contract_violation);
    EXPECT_THROW(logspace(1.0, -1.0, 3), contract_violation);
}

TEST(Stats, PercentileSortedMatchesPercentile)
{
    const std::vector<double> unsorted = {9.0, 1.0, 5.0, 3.0, 7.0, 2.0};
    std::vector<double> sorted = unsorted;
    std::sort(sorted.begin(), sorted.end());
    for (double p : {0.0, 10.0, 25.0, 50.0, 75.0, 95.0, 100.0})
        EXPECT_DOUBLE_EQ(percentile_sorted(sorted, p), percentile(unsorted, p));
}

TEST(Stats, PercentileSortedEdgeCases)
{
    EXPECT_EQ(percentile_sorted({}, 50.0), 0.0);
    const std::vector<double> one = {4.0};
    EXPECT_EQ(percentile_sorted(one, 95.0), 4.0);
    const std::vector<double> two = {1.0, 3.0};
    EXPECT_DOUBLE_EQ(percentile_sorted(two, 50.0), 2.0);
    EXPECT_THROW(percentile_sorted(two, -1.0), contract_violation);
    EXPECT_THROW(percentile_sorted(two, 101.0), contract_violation);
}

TEST(Stats, PearsonCorrelation)
{
    const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
    const std::vector<double> up{2.0, 4.0, 6.0, 8.0, 10.0};
    const std::vector<double> down{5.0, 4.0, 3.0, 2.0, 1.0};
    EXPECT_NEAR(pearson_correlation(xs, up), 1.0, 1e-12);
    EXPECT_NEAR(pearson_correlation(xs, down), -1.0, 1e-12);
    // Hand-computed partial correlation.
    const std::vector<double> ys{1.0, 3.0, 2.0, 5.0, 4.0};
    EXPECT_NEAR(pearson_correlation(xs, ys), 0.8, 1e-12);
    // Degenerate samples report 0, not NaN.
    const std::vector<double> flat{3.0, 3.0, 3.0, 3.0, 3.0};
    EXPECT_DOUBLE_EQ(pearson_correlation(xs, flat), 0.0);
    EXPECT_DOUBLE_EQ(pearson_correlation({}, {}), 0.0);
    const std::vector<double> one{1.0};
    EXPECT_DOUBLE_EQ(pearson_correlation(one, one), 0.0);
    EXPECT_THROW(pearson_correlation(xs, one), contract_violation);
}

} // namespace
} // namespace ssplane
