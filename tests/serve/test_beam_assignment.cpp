// Beam assignment under hard limits: synthetic single-cell geometries pin
// the capacity/degradation/drop arithmetic exactly; a real Walker shell
// cross-checks the bucketed visibility prefilter against brute force and
// the whole pass against thread-count/chunk-size perturbations.
#include "serve/beam_assignment.h"

#include <cmath>

#include <gtest/gtest.h>

#include "astro/frames.h"
#include "astro/time.h"
#include "constellation/walker.h"
#include "lsn/scenario.h"
#include "lsn/topology.h"
#include "util/angles.h"
#include "util/expects.h"
#include "util/parallel.h"

namespace ssplane::serve {
namespace {

session_cell make_cell(double lat_deg, double lon_deg, std::int64_t homed)
{
    session_cell cell;
    cell.latitude_deg = lat_deg;
    cell.longitude_deg = lon_deg;
    cell.site_ecef_m = astro::geodetic_to_ecef({lat_deg, lon_deg, 0.0});
    cell.sessions_homed = homed;
    return cell;
}

session_grid single_cell_grid(std::int64_t homed)
{
    session_grid grid;
    grid.cells.push_back(make_cell(10.0, 20.0, homed));
    grid.total_sessions = homed;
    grid.n_grid_cells = 1;
    return grid;
}

/// A satellite at `altitude_m` directly above the cell.
vec3 overhead(const session_cell& cell, double altitude_m = 550.0e3)
{
    const double r = cell.site_ecef_m.norm();
    return cell.site_ecef_m * ((r + altitude_m) / r);
}

serving_options roomy_options()
{
    serving_options options;
    options.n_sessions = 1; // unused by assign_beams, must just validate
    options.beams_per_satellite = 10000;
    options.beam_capacity_gbps = 1.0e6;
    options.max_users_per_beam = 1000000;
    options.satellite_capacity_gbps = 1.0e6;
    return options;
}

TEST(BeamAssignment, OverheadSatelliteServesEveryActiveSessionAtFullRate)
{
    const auto grid = single_cell_grid(400);
    const std::vector<vec3> sats{overhead(grid.cells[0])};
    const auto t = astro::instant::j2000();
    const auto options = roomy_options();
    const std::int64_t active = active_sessions(grid.cells[0], t);
    ASSERT_GT(active, 0);

    const auto result = assign_beams(grid, sats, {}, t, options);
    EXPECT_EQ(result.sessions_active, active);
    EXPECT_EQ(result.sessions_dropped, 0);
    EXPECT_EQ(result.sessions_degraded, 0);
    EXPECT_DOUBLE_EQ(result.served_fraction(), 1.0);
    EXPECT_NEAR(result.delivered_gbps,
                static_cast<double>(active) * options.session_rate_mbps / 1000.0,
                1e-9);
    EXPECT_DOUBLE_EQ(result.delivered_gbps, result.offered_gbps);
    EXPECT_EQ(result.beams_used, 1);
    EXPECT_EQ(result.satellites_serving, 1);
    std::int64_t grouped = 0;
    for (const auto& g : result.rate_groups) grouped += g.sessions;
    EXPECT_EQ(grouped, result.sessions_active);
    EXPECT_DOUBLE_EQ(session_rate_percentile(result.rate_groups, 1.0),
                     options.session_rate_mbps);
}

TEST(BeamAssignment, AntipodalSatelliteDropsEverything)
{
    const auto grid = single_cell_grid(400);
    const std::vector<vec3> sats{-overhead(grid.cells[0])};
    const auto t = astro::instant::j2000();
    const auto result = assign_beams(grid, sats, {}, t, roomy_options());
    ASSERT_GT(result.sessions_active, 0);
    EXPECT_EQ(result.sessions_dropped, result.sessions_active);
    EXPECT_DOUBLE_EQ(result.delivered_gbps, 0.0);
    EXPECT_DOUBLE_EQ(result.served_fraction(), 0.0);
    EXPECT_EQ(result.beams_used, 0);
    ASSERT_EQ(result.rate_groups.size(), 1u);
    EXPECT_DOUBLE_EQ(result.rate_groups[0].rate_mbps, 0.0);
    EXPECT_DOUBLE_EQ(session_rate_percentile(result.rate_groups, 99.0), 0.0);
}

TEST(BeamAssignment, FailedSatelliteServesNothing)
{
    const auto grid = single_cell_grid(400);
    const std::vector<vec3> sats{overhead(grid.cells[0])};
    const std::vector<std::uint8_t> failed{1};
    const auto t = astro::instant::j2000();
    const auto result = assign_beams(grid, sats, failed, t, roomy_options());
    EXPECT_EQ(result.sessions_dropped, result.sessions_active);
    EXPECT_DOUBLE_EQ(result.delivered_gbps, 0.0);
    EXPECT_EQ(result.satellites_serving, 0);
}

TEST(BeamAssignment, PerBeamUserLimitSplitsTheCellAcrossBeams)
{
    const auto grid = single_cell_grid(1000);
    const std::vector<vec3> sats{overhead(grid.cells[0])};
    const auto t = astro::instant::j2000();
    auto options = roomy_options();
    options.max_users_per_beam = 100;
    const auto result = assign_beams(grid, sats, {}, t, options);
    ASSERT_GT(result.sessions_active, 0);
    EXPECT_EQ(result.sessions_dropped, 0);
    const std::int64_t expected_beams = (result.sessions_active + 99) / 100;
    EXPECT_EQ(result.beams_used, static_cast<int>(expected_beams));
    for (const auto& g : result.rate_groups) EXPECT_LE(g.sessions, 100);
}

TEST(BeamAssignment, BeamCapacityShortfallDegradesUsers)
{
    const auto grid = single_cell_grid(1000);
    const std::vector<vec3> sats{overhead(grid.cells[0])};
    const auto t = astro::instant::j2000();
    auto options = roomy_options();
    // One beam must take everyone, but delivers only 0.5 Gbps against a
    // multi-Gbps offered load → per-session rate far below the 50%
    // degraded threshold.
    options.beam_capacity_gbps = 0.5;
    const auto result = assign_beams(grid, sats, {}, t, options);
    ASSERT_GT(result.sessions_active, 0);
    EXPECT_EQ(result.sessions_dropped, 0);
    EXPECT_EQ(result.sessions_degraded, result.sessions_active);
    EXPECT_DOUBLE_EQ(result.served_fraction(), 0.0);
    EXPECT_DOUBLE_EQ(result.delivered_gbps, 0.5);
}

TEST(BeamAssignment, SatelliteCapacityCapsDeliveryAcrossBeams)
{
    const auto grid = single_cell_grid(1000);
    const std::vector<vec3> sats{overhead(grid.cells[0])};
    const auto t = astro::instant::j2000();
    auto options = roomy_options();
    options.max_users_per_beam = 100;
    options.beam_capacity_gbps = 2.0;       // each beam could deliver its 2 Gbps
    options.satellite_capacity_gbps = 3.0;  // but the satellite caps the sum
    const auto result = assign_beams(grid, sats, {}, t, options);
    EXPECT_LE(result.delivered_gbps, 3.0 + 1e-9);
    EXPECT_GT(result.sessions_degraded + result.sessions_dropped, 0);
}

TEST(BeamAssignment, LoadBalancesAcrossEquallyGoodSatellites)
{
    const auto grid = single_cell_grid(1000);
    const vec3 above = overhead(grid.cells[0]);
    const std::vector<vec3> sats{above, above};
    const auto t = astro::instant::j2000();
    auto options = roomy_options();
    options.max_users_per_beam = 100;
    options.beam_capacity_gbps = 2.0; // beams drain residual capacity visibly
    const auto result = assign_beams(grid, sats, {}, t, options);
    // Residual-capacity-first placement alternates between the twins, so
    // both end up serving (first pick breaks the tie toward index 0, the
    // second then sees more headroom on index 1).
    EXPECT_EQ(result.satellites_serving, 2);
    EXPECT_EQ(result.sessions_dropped, 0);
}

TEST(BeamAssignment, MaskSizeMismatchIsRejected)
{
    const auto grid = single_cell_grid(10);
    const std::vector<vec3> sats{overhead(grid.cells[0])};
    const std::vector<std::uint8_t> wrong{0, 0};
    EXPECT_THROW(
        assign_beams(grid, sats, wrong, astro::instant::j2000(), roomy_options()),
        contract_violation);
}

TEST(BeamAssignment, PercentileWalksTheSortedDistribution)
{
    const std::vector<session_rate_group> groups{
        {3.0, 80}, {1.0, 10}, {2.0, 10}};
    EXPECT_DOUBLE_EQ(session_rate_percentile(groups, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(session_rate_percentile(groups, 10.0), 1.0);
    EXPECT_DOUBLE_EQ(session_rate_percentile(groups, 11.0), 2.0);
    EXPECT_DOUBLE_EQ(session_rate_percentile(groups, 50.0), 3.0);
    EXPECT_DOUBLE_EQ(session_rate_percentile(groups, 100.0), 3.0);
    EXPECT_DOUBLE_EQ(session_rate_percentile({}, 50.0), 0.0);
    EXPECT_THROW(session_rate_percentile(groups, 101.0), contract_violation);
}

// --- Real-shell cross-checks ----------------------------------------------

lsn::lsn_topology small_walker()
{
    constellation::walker_parameters params;
    params.altitude_m = 550.0e3;
    params.inclination_rad = deg2rad(53.0);
    params.n_planes = 6;
    params.sats_per_plane = 8;
    params.phasing_f = 1;
    return lsn::build_walker_grid_topology(params);
}

TEST(BeamAssignment, BucketedPrefilterMatchesBruteForceVisibility)
{
    const auto topo = small_walker();
    const lsn::snapshot_builder builder(topo, lsn::default_ground_stations(),
                                        astro::instant::j2000(),
                                        deg2rad(25.0));
    const std::vector<double> offsets{0.0};
    const auto positions = builder.positions_at_offsets(offsets);

    const demand::population_model population;
    serving_options sample_options;
    sample_options.n_sessions = 20000;
    sample_options.seed = 7;
    const auto grid = sample_session_grid(population, sample_options);

    auto options = roomy_options();
    const auto t = builder.epoch();
    const auto result = assign_beams(grid, positions[0], {}, t, options);

    // With effectively unlimited capacity the only reason to drop is "no
    // satellite above the mask" — so the dropped count must equal the
    // brute-force sum over cells with zero visible satellites, catching
    // both false negatives and false positives of the banded prefilter.
    std::int64_t invisible_active = 0;
    std::int64_t total_active = 0;
    for (const auto& cell : grid.cells) {
        const std::int64_t active = active_sessions(cell, t);
        total_active += active;
        bool visible = false;
        for (const vec3& sat : positions[0]) {
            if (astro::elevation_angle_rad(cell.site_ecef_m, sat) >=
                options.min_elevation_rad) {
                visible = true;
                break;
            }
        }
        if (!visible) invisible_active += active;
    }
    EXPECT_EQ(result.sessions_active, total_active);
    EXPECT_EQ(result.sessions_dropped, invisible_active);
}

TEST(BeamAssignment, BitIdenticalAcrossThreadsAndChunkSizes)
{
    const auto topo = small_walker();
    const lsn::snapshot_builder builder(topo, lsn::default_ground_stations(),
                                        astro::instant::j2000(),
                                        deg2rad(25.0));
    const std::vector<double> offsets{0.0};
    const auto positions = builder.positions_at_offsets(offsets);

    const demand::population_model population;
    serving_options options; // default capacities: contention is real
    options.n_sessions = 50000;
    options.seed = 11;
    const auto grid = sample_session_grid(population, options);
    const auto t = builder.epoch();

    const auto reference = assign_beams(grid, positions[0], {}, t, options);
    for (const unsigned threads : {1u, 2u, 4u}) {
        set_thread_count(threads);
        for (const int chunk : {0, 13, 4096}) {
            serving_options perturbed = options;
            perturbed.chunk_cells = chunk;
            const auto result = assign_beams(grid, positions[0], {}, t, perturbed);
            EXPECT_EQ(result.sessions_active, reference.sessions_active);
            EXPECT_EQ(result.sessions_dropped, reference.sessions_dropped);
            EXPECT_EQ(result.sessions_degraded, reference.sessions_degraded);
            EXPECT_EQ(result.delivered_gbps, reference.delivered_gbps);
            EXPECT_EQ(result.beams_used, reference.beams_used);
            EXPECT_EQ(result.satellites_serving, reference.satellites_serving);
            ASSERT_EQ(result.rate_groups.size(), reference.rate_groups.size());
            for (std::size_t g = 0; g < result.rate_groups.size(); ++g) {
                EXPECT_EQ(result.rate_groups[g].rate_mbps,
                          reference.rate_groups[g].rate_mbps);
                EXPECT_EQ(result.rate_groups[g].sessions,
                          reference.rate_groups[g].sessions);
            }
        }
    }
    set_thread_count(0);
}

} // namespace
} // namespace ssplane::serve
