// Serving sweeps along failure timelines: a mid-sweep total strike must
// show up as a served-fraction dip with the right drop accounting, the SLO
// scalars must be pure functions of the step traces, and the whole sweep
// must be bit-identical under thread-count and chunk-size perturbations.
#include "serve/serving_sweep.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "constellation/walker.h"
#include "lsn/topology.h"
#include "util/angles.h"
#include "util/expects.h"
#include "util/parallel.h"

namespace ssplane::serve {
namespace {

lsn::lsn_topology small_walker()
{
    constellation::walker_parameters params;
    params.altitude_m = 550.0e3;
    params.inclination_rad = deg2rad(53.0);
    params.n_planes = 6;
    params.sats_per_plane = 8;
    params.phasing_f = 1;
    return lsn::build_walker_grid_topology(params);
}

struct sweep_fixture {
    lsn::lsn_topology topo = small_walker();
    lsn::snapshot_builder builder{topo, lsn::default_ground_stations(),
                                  astro::instant::j2000(), deg2rad(25.0)};
    std::vector<double> offsets = lsn::sweep_offsets(7200.0, 1800.0);
    std::vector<std::vector<vec3>> positions =
        builder.positions_at_offsets(offsets);
    session_grid grid;

    explicit sweep_fixture(std::int64_t n_sessions = 30000)
    {
        const demand::population_model population;
        serving_options options;
        options.n_sessions = n_sessions;
        options.seed = 3;
        grid = sample_session_grid(population, options);
    }
};

/// All satellites dead from step `strike` through step `restore - 1`.
lsn::failure_timeline strike_window(int n_sats, int n_steps, int strike,
                                    int restore)
{
    lsn::failure_timeline timeline;
    timeline.n_satellites = n_sats;
    timeline.n_steps = n_steps;
    timeline.masks.assign(
        static_cast<std::size_t>(n_sats) * static_cast<std::size_t>(n_steps), 0);
    for (int step = strike; step < restore; ++step)
        for (int s = 0; s < n_sats; ++s)
            timeline.masks[static_cast<std::size_t>(step) *
                               static_cast<std::size_t>(n_sats) +
                           static_cast<std::size_t>(s)] = 1;
    return timeline;
}

TEST(ServingSweep, ScalarsAreFunctionsOfTheStepTraces)
{
    const sweep_fixture fx;
    serving_options options;
    options.n_sessions = 30000;
    options.seed = 3;
    const auto result = run_serving_sweep_timeline(
        fx.builder, fx.offsets, fx.positions,
        lsn::failure_timeline::from_static_mask({}), fx.grid, options);

    const auto n = fx.offsets.size();
    ASSERT_EQ(result.n_steps, static_cast<int>(n));
    ASSERT_EQ(result.step_served_fraction.size(), n);
    ASSERT_EQ(result.step_sessions_active.size(), n);
    ASSERT_EQ(result.step_sessions_dropped.size(), n);
    ASSERT_EQ(result.step_sessions_degraded.size(), n);
    ASSERT_EQ(result.step_p99_session_rate_mbps.size(), n);
    ASSERT_EQ(result.step_delivered_gbps.size(), n);

    const auto& m = result.metrics;
    EXPECT_EQ(m.sessions_homed, fx.grid.total_sessions);
    double served_min = 1.0;
    double served_sum = 0.0;
    for (const double f : result.step_served_fraction) {
        EXPECT_GE(f, 0.0);
        EXPECT_LE(f, 1.0);
        served_min = std::min(served_min, f);
        served_sum += f;
    }
    EXPECT_DOUBLE_EQ(m.min_step_served_fraction, served_min);
    EXPECT_DOUBLE_EQ(m.served_fraction_mean,
                     served_sum / static_cast<double>(n));
    EXPECT_DOUBLE_EQ(m.time_to_restore_s,
                     time_to_restore(result.step_served_fraction, fx.offsets,
                                     options.restore_served_fraction));
    EXPECT_DOUBLE_EQ(m.recovery_headroom,
                     lsn::recovery_headroom(result.step_served_fraction));
    EXPECT_GE(m.delivered_fraction, 0.0);
    EXPECT_LE(m.delivered_fraction, 1.0);
    EXPECT_GE(m.p50_session_rate_mbps, m.p99_session_rate_mbps);
}

TEST(ServingSweep, MidSweepTotalStrikeDipsAndRecovers)
{
    const sweep_fixture fx;
    serving_options options;
    options.n_sessions = 30000;
    options.seed = 3;
    const int n_sats = static_cast<int>(fx.positions[0].size());
    const int n_steps = static_cast<int>(fx.offsets.size());
    ASSERT_GE(n_steps, 3);

    const auto baseline = run_serving_sweep_timeline(
        fx.builder, fx.offsets, fx.positions,
        lsn::failure_timeline::from_static_mask({}), fx.grid, options);
    const auto struck = run_serving_sweep_timeline(
        fx.builder, fx.offsets, fx.positions,
        strike_window(n_sats, n_steps, 1, 2), fx.grid, options);

    // The struck step serves nobody: everything awake is dropped.
    EXPECT_DOUBLE_EQ(struck.step_served_fraction[1], 0.0);
    EXPECT_DOUBLE_EQ(struck.step_delivered_gbps[1], 0.0);
    EXPECT_EQ(struck.step_sessions_dropped[1], struck.step_sessions_active[1]);
    EXPECT_GT(struck.step_sessions_active[1], 0.0);
    // The strike step drops everyone awake, but the *worst* step may still
    // be a busier baseline step with coverage gaps — the max is over the
    // whole trace.
    double dropped_max = 0.0;
    for (const double d : struck.step_sessions_dropped)
        dropped_max = std::max(dropped_max, d);
    EXPECT_EQ(struck.metrics.sessions_dropped_max,
              static_cast<std::int64_t>(dropped_max));
    EXPECT_GE(struck.metrics.sessions_dropped_max,
              static_cast<std::int64_t>(struck.step_sessions_active[1]));

    // Every untouched step is byte-identical to the baseline sweep.
    for (const int step : {0, 2, 3}) {
        if (step >= n_steps) continue;
        EXPECT_EQ(struck.step_served_fraction[static_cast<std::size_t>(step)],
                  baseline.step_served_fraction[static_cast<std::size_t>(step)]);
        EXPECT_EQ(struck.step_delivered_gbps[static_cast<std::size_t>(step)],
                  baseline.step_delivered_gbps[static_cast<std::size_t>(step)]);
    }
    EXPECT_LE(struck.metrics.served_fraction_mean,
              baseline.metrics.served_fraction_mean);
    EXPECT_GE(struck.metrics.recovery_headroom,
              baseline.metrics.recovery_headroom);
}

TEST(ServingSweep, TimeToRestoreSemantics)
{
    const std::vector<double> offsets{0.0, 600.0, 1200.0, 1800.0};
    const std::vector<double> healthy{1.0, 0.95, 1.0, 0.92};
    EXPECT_DOUBLE_EQ(time_to_restore(healthy, offsets, 0.9), -1.0);

    const std::vector<double> restored{1.0, 0.4, 0.5, 0.95};
    EXPECT_DOUBLE_EQ(time_to_restore(restored, offsets, 0.9), 1200.0);

    const std::vector<double> stuck{1.0, 0.4, 0.5, 0.6};
    EXPECT_TRUE(std::isinf(time_to_restore(stuck, offsets, 0.9)));

    const std::vector<double> misaligned{1.0, 0.4};
    EXPECT_THROW(time_to_restore(misaligned, offsets, 0.9), contract_violation);
}

TEST(ServingSweep, MaskedWrapperMatchesSingleRowTimeline)
{
    const sweep_fixture fx(15000);
    serving_options options;
    options.n_sessions = 15000;
    options.seed = 3;
    const int n_sats = static_cast<int>(fx.positions[0].size());
    std::vector<std::uint8_t> mask(static_cast<std::size_t>(n_sats), 0);
    for (int s = 0; s < n_sats; s += 3) mask[static_cast<std::size_t>(s)] = 1;

    const auto via_mask = run_serving_sweep_masked(
        fx.builder, fx.offsets, fx.positions, mask, fx.grid, options);
    const auto via_timeline = run_serving_sweep_timeline(
        fx.builder, fx.offsets, fx.positions,
        lsn::failure_timeline::from_static_mask(mask), fx.grid, options);
    EXPECT_EQ(via_mask.step_served_fraction, via_timeline.step_served_fraction);
    EXPECT_EQ(via_mask.step_delivered_gbps, via_timeline.step_delivered_gbps);
    EXPECT_EQ(via_mask.metrics.p99_session_rate_mbps,
              via_timeline.metrics.p99_session_rate_mbps);

    std::vector<std::uint8_t> wrong(static_cast<std::size_t>(n_sats) + 1, 0);
    EXPECT_THROW(run_serving_sweep_masked(fx.builder, fx.offsets, fx.positions,
                                          wrong, fx.grid, options),
                 contract_violation);
}

TEST(ServingSweep, BitIdenticalAcrossThreadsAndChunkSizes)
{
    const sweep_fixture fx;
    serving_options options;
    options.n_sessions = 30000;
    options.seed = 3;
    const int n_sats = static_cast<int>(fx.positions[0].size());
    const int n_steps = static_cast<int>(fx.offsets.size());
    const auto timeline = strike_window(n_sats, n_steps, 1, 3);

    const auto reference = run_serving_sweep_timeline(
        fx.builder, fx.offsets, fx.positions, timeline, fx.grid, options);
    for (const unsigned threads : {1u, 2u, 4u}) {
        set_thread_count(threads);
        for (const int chunk : {0, 5}) {
            serving_options perturbed = options;
            perturbed.chunk_cells = chunk;
            const auto result = run_serving_sweep_timeline(
                fx.builder, fx.offsets, fx.positions, timeline, fx.grid,
                perturbed);
            EXPECT_EQ(result.step_served_fraction,
                      reference.step_served_fraction);
            EXPECT_EQ(result.step_sessions_active,
                      reference.step_sessions_active);
            EXPECT_EQ(result.step_sessions_dropped,
                      reference.step_sessions_dropped);
            EXPECT_EQ(result.step_sessions_degraded,
                      reference.step_sessions_degraded);
            EXPECT_EQ(result.step_p99_session_rate_mbps,
                      reference.step_p99_session_rate_mbps);
            EXPECT_EQ(result.step_delivered_gbps,
                      reference.step_delivered_gbps);
            EXPECT_EQ(result.metrics.p50_session_rate_mbps,
                      reference.metrics.p50_session_rate_mbps);
            EXPECT_EQ(result.metrics.p99_session_rate_mbps,
                      reference.metrics.p99_session_rate_mbps);
            EXPECT_EQ(result.metrics.served_fraction_mean,
                      reference.metrics.served_fraction_mean);
            EXPECT_EQ(result.metrics.time_to_restore_s,
                      reference.metrics.time_to_restore_s);
        }
    }
    set_thread_count(0);
}

} // namespace
} // namespace ssplane::serve
