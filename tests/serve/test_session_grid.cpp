// The session sampler's contract: sessions land in proportion to
// population mass, memory stays O(active cells), and the draw is a pure
// function of (seed, cell) — bit-identical for any thread count and any
// chunk size.
#include "serve/session_grid.h"

#include <cmath>
#include <cstdlib>

#include <gtest/gtest.h>

#include "util/expects.h"
#include "util/parallel.h"

namespace ssplane::serve {
namespace {

const demand::population_model& test_population()
{
    static const demand::population_model model;
    return model;
}

serving_options small_options(std::int64_t n_sessions = 200000)
{
    serving_options options;
    options.n_sessions = n_sessions;
    options.seed = 42;
    return options;
}

TEST(SessionGrid, TotalSessionsTracksTarget)
{
    const auto grid = sample_session_grid(test_population(), small_options());
    // Stochastic rounding: the realized total differs from the target by a
    // sum of Bernoulli corrections, one per populated cell — O(√cells),
    // far inside 1% of 200k sessions.
    EXPECT_NEAR(static_cast<double>(grid.total_sessions), 200000.0, 2000.0);

    std::int64_t sum = 0;
    for (const auto& cell : grid.cells) {
        EXPECT_GT(cell.sessions_homed, 0);
        sum += cell.sessions_homed;
    }
    EXPECT_EQ(sum, grid.total_sessions);
}

TEST(SessionGrid, MemoryIsActiveCellsNotUsers)
{
    // 100× more sessions must not mean more cells: the aggregate stays
    // bounded by the populated subset of the lat/lon grid.
    const auto small = sample_session_grid(test_population(), small_options(100000));
    const auto large =
        sample_session_grid(test_population(), small_options(10000000));
    EXPECT_EQ(small.n_grid_cells, large.n_grid_cells);
    EXPECT_LT(large.cells.size(), large.n_grid_cells);
    // Cell records, not user records: 10M sessions fit in the same O(cells)
    // footprint (populated cells can only grow toward the populated-cell
    // ceiling, never toward the session count).
    EXPECT_LT(large.cells.size(), 200000u);
    EXPECT_GE(large.cells.size(), small.cells.size());
}

TEST(SessionGrid, SitesAndOrderingAreWellFormed)
{
    const auto grid = sample_session_grid(test_population(), small_options());
    ASSERT_FALSE(grid.cells.empty());
    for (const auto& cell : grid.cells) {
        EXPECT_GE(cell.latitude_deg, -90.0);
        EXPECT_LE(cell.latitude_deg, 90.0);
        // Ground sites sit on the ellipsoid surface: ~6357–6378 km radius.
        const double r = cell.site_ecef_m.norm();
        EXPECT_GT(r, 6.3e6);
        EXPECT_LT(r, 6.4e6);
    }
    // Row-major grid order (south to north): latitudes are non-decreasing.
    for (std::size_t i = 0; i + 1 < grid.cells.size(); ++i)
        EXPECT_LE(grid.cells[i].latitude_deg, grid.cells[i + 1].latitude_deg);
}

TEST(SessionGrid, BitIdenticalAcrossThreadsAndChunkSizes)
{
    const auto reference = sample_session_grid(test_population(), small_options());
    for (const unsigned threads : {1u, 2u, 4u}) {
        set_thread_count(threads);
        for (const int chunk : {0, 7, 4096}) {
            serving_options options = small_options();
            options.chunk_cells = chunk;
            const auto grid = sample_session_grid(test_population(), options);
            ASSERT_EQ(grid.cells.size(), reference.cells.size())
                << "threads " << threads << " chunk " << chunk;
            EXPECT_EQ(grid.total_sessions, reference.total_sessions);
            for (std::size_t i = 0; i < grid.cells.size(); ++i) {
                EXPECT_EQ(grid.cells[i].sessions_homed,
                          reference.cells[i].sessions_homed);
                EXPECT_EQ(grid.cells[i].latitude_deg,
                          reference.cells[i].latitude_deg);
                EXPECT_EQ(grid.cells[i].longitude_deg,
                          reference.cells[i].longitude_deg);
                EXPECT_EQ(grid.cells[i].site_ecef_m, reference.cells[i].site_ecef_m);
            }
        }
    }
    set_thread_count(0);
}

TEST(SessionGrid, SeedMovesOnlyTheStochasticRounding)
{
    serving_options reseeded = small_options();
    reseeded.seed = 43;
    const auto a = sample_session_grid(test_population(), small_options());
    const auto b = sample_session_grid(test_population(), reseeded);
    // Different rounding draws, same expected mass.
    EXPECT_NEAR(static_cast<double>(a.total_sessions),
                static_cast<double>(b.total_sessions), 2000.0);
    std::int64_t max_delta = 0;
    // Counts per cell may shift by at most the one Bernoulli unit.
    std::size_t ia = 0, ib = 0;
    std::int64_t differing = 0;
    while (ia < a.cells.size() && ib < b.cells.size()) {
        const auto& ca = a.cells[ia];
        const auto& cb = b.cells[ib];
        if (ca.latitude_deg == cb.latitude_deg &&
            ca.longitude_deg == cb.longitude_deg) {
            const std::int64_t d = std::abs(ca.sessions_homed - cb.sessions_homed);
            max_delta = std::max(max_delta, d);
            if (d != 0) ++differing;
            ++ia;
            ++ib;
        } else if (ca.latitude_deg < cb.latitude_deg ||
                   (ca.latitude_deg == cb.latitude_deg &&
                    ca.longitude_deg < cb.longitude_deg)) {
            ++ia;
        } else {
            ++ib;
        }
    }
    EXPECT_LE(max_delta, 1);
    EXPECT_GT(differing, 0); // the reseed did change some draws
}

TEST(SessionGrid, ActiveSessionsFollowDiurnalShape)
{
    session_cell cell;
    cell.latitude_deg = 0.0;
    cell.longitude_deg = 0.0;
    cell.sessions_homed = 10000;
    const auto epoch = astro::instant::j2000();
    std::int64_t peak = 0;
    std::int64_t trough = cell.sessions_homed;
    for (int hour = 0; hour < 24; ++hour) {
        const std::int64_t active =
            active_sessions(cell, epoch.plus_seconds(hour * 3600.0));
        EXPECT_GE(active, 0);
        EXPECT_LE(active, cell.sessions_homed);
        peak = std::max(peak, active);
        trough = std::min(trough, active);
    }
    // The diurnal peak wakes (nearly) everyone; the pre-dawn trough is
    // roughly half the median — far below the peak.
    EXPECT_GT(peak, cell.sessions_homed * 9 / 10);
    EXPECT_LT(trough, peak * 2 / 3);
}

// --- serve::validate guard per rejected field ------------------------------

template <class Mutate>
void expect_rejected(Mutate&& mutate)
{
    serving_options options;
    mutate(options);
    EXPECT_THROW(validate(options), contract_violation);
}

TEST(ServingOptionsValidate, RejectsEachDegenerateField)
{
    EXPECT_NO_THROW(validate(serving_options{}));
    expect_rejected([](serving_options& o) { o.n_sessions = 0; });
    expect_rejected([](serving_options& o) { o.session_rate_mbps = 0.0; });
    expect_rejected([](serving_options& o) { o.session_rate_mbps = -1.0; });
    expect_rejected([](serving_options& o) { o.beams_per_satellite = 0; });
    expect_rejected([](serving_options& o) { o.beam_capacity_gbps = 0.0; });
    expect_rejected([](serving_options& o) { o.max_users_per_beam = 0; });
    expect_rejected([](serving_options& o) { o.satellite_capacity_gbps = 0.0; });
    expect_rejected([](serving_options& o) { o.min_elevation_rad = -0.1; });
    expect_rejected([](serving_options& o) { o.min_elevation_rad = 1.6; });
    expect_rejected([](serving_options& o) { o.chunk_cells = -1; });
    expect_rejected([](serving_options& o) { o.degraded_rate_fraction = 0.0; });
    expect_rejected([](serving_options& o) { o.degraded_rate_fraction = 1.5; });
    expect_rejected([](serving_options& o) { o.restore_served_fraction = 0.0; });
    expect_rejected([](serving_options& o) { o.restore_served_fraction = 1.5; });
}

TEST(ServingOptionsValidate, SamplerRejectsDegenerateKnobsBeforeWork)
{
    serving_options options;
    options.n_sessions = 0;
    EXPECT_THROW(sample_session_grid(test_population(), options),
                 contract_violation);
}

} // namespace
} // namespace ssplane::serve
