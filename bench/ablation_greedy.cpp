// Ablation A1: the §4.2 greedy vs seeding variants and lower bounds, plus a
// demand-concentration sweep showing where the paper's "up to an order of
// magnitude" SS advantage lives (see EXPERIMENTS.md).
#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "core/evaluator.h"
#include "util/csv.h"

using namespace ssplane;

namespace {

/// Raise the demand field to a power (renormalized to the same peak) to
/// sweep spatial/temporal concentration: gamma=1 is the paper's demand,
/// larger gamma approaches a point demand.
core::design_problem concentrated_problem(double multiplier, double gamma)
{
    auto problem = core::make_design_problem(bench::paper_demand(), multiplier);
    for (double& v : problem.demand.field().values()) {
        v = multiplier * std::pow(v / multiplier, gamma);
    }
    return problem;
}

} // namespace

int main()
{
    bench::stopwatch timer;
    std::cout << "# Ablation: greedy variants and demand concentration\n\n";

    // --- Seeding-rule ablation at B = 50 ---
    const auto problem = core::make_design_problem(bench::paper_demand(), 50.0);
    const auto bounds = core::ss_plane_lower_bounds(problem);

    csv_writer rules_csv(std::cout, {"rule", "planes", "satellites", "satisfied"});
    int greedy_planes = 0;
    int random_planes = 0;
    int worst_planes = 0;
    {
        const auto r = core::greedy_ss_cover(problem);
        greedy_planes = static_cast<int>(r.planes.size());
        rules_csv.row_text({"max_demand", format_number(greedy_planes),
                            format_number(r.total_satellites),
                            r.satisfied ? "1" : "0"});
    }
    {
        core::ss_design_options opts;
        opts.rule = core::seed_rule::random_cell;
        opts.seed = 7;
        const auto r = core::greedy_ss_cover(problem, opts);
        random_planes = static_cast<int>(r.planes.size());
        rules_csv.row_text({"random_cell", format_number(random_planes),
                            format_number(r.total_satellites),
                            r.satisfied ? "1" : "0"});
    }
    {
        core::ss_design_options opts;
        opts.rule = core::seed_rule::min_demand;
        const auto r = core::greedy_ss_cover(problem, opts);
        worst_planes = static_cast<int>(r.planes.size());
        rules_csv.row_text({"min_demand", format_number(worst_planes),
                            format_number(r.total_satellites),
                            r.satisfied ? "1" : "0"});
    }
    std::cout << "\nlower_bound_per_cell=" << bounds.per_cell_bound
              << "\nlower_bound_volume=" << bounds.volume_bound << "\n\n";

    // --- Concentration sweep at B = 50 ---
    core::walker_baseline_designer wd_designer;
    csv_writer conc_csv(std::cout, {"gamma", "ss_satellites", "wd_satellites",
                                    "ratio_wd_over_ss"});
    double ratio_gamma1 = 0.0;
    double ratio_gamma32 = 0.0;
    for (double gamma : {1.0, 2.0, 4.0, 8.0, 32.0}) {
        const auto p = concentrated_problem(50.0, gamma);
        const auto ss = core::greedy_ss_cover(p);
        const auto wd = wd_designer.design(p);
        const double ratio = static_cast<double>(wd.total_satellites) /
                             std::max(1, ss.total_satellites);
        conc_csv.row({gamma, static_cast<double>(ss.total_satellites),
                      static_cast<double>(wd.total_satellites), ratio});
        if (gamma == 1.0) ratio_gamma1 = ratio;
        if (gamma == 32.0) ratio_gamma32 = ratio;
    }
    std::cout << "\n";

    bench::check("greedy respects the per-cell lower bound",
                 greedy_planes >= bounds.best());
    // Finding: with swath-wide capacity masks the paper's max-demand rule is
    // not clearly better than random/min seeding (all rules must serve the
    // same demand volume); we only require it stays within 2x.
    bench::check("greedy within 2x of the alternative seedings",
                 greedy_planes <= 2.0 * std::min(random_planes, worst_planes) + 2);
    bench::check("SS advantage grows with demand concentration",
                 ratio_gamma32 > ratio_gamma1);
    bench::check("concentrated demand reaches >=4x advantage (paper: 'up to' 10x)",
                 ratio_gamma32 >= 4.0);

    std::cout << "elapsed_s=" << timer.seconds() << "\n";
    return 0;
}
