// Performance microbenchmarks (google-benchmark) for the library's hot
// paths: propagation, flux evaluation, map sweeps, plane masks, greedy
// iterations and routing.
//
// Besides the console table, every run writes BENCH_perf.json (benchmark
// name -> ns/op; path overridable via SSPLANE_BENCH_JSON) so successive PRs
// can track the perf trajectory mechanically.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <string>

#include "astro/propagator.h"
#include "bench_util.h"
#include "core/design_problem.h"
#include "exp/campaign.h"
#include "core/greedy_cover.h"
#include "core/plane_trace.h"
#include "demand/demand_model.h"
#include "demand/population.h"
#include "geo/coverage.h"
#include "lsn/routing.h"
#include "lsn/scenario.h"
#include "obs/trace.h"
#include "radiation/belts.h"
#include "radiation/fluence.h"
#include "spectral/lanczos.h"
#include "serve/serving_sweep.h"
#include "spectral/percolation.h"
#include "tempo/bulk_router.h"
#include "traffic/adversary.h"
#include "traffic/flow_assignment.h"
#include "traffic/traffic_matrix.h"
#include "util/angles.h"

using namespace ssplane;

namespace {

const demand::population_model& bench_population()
{
    static const demand::population_model model;
    return model;
}

void bm_propagator_state(benchmark::State& state)
{
    const astro::j2_propagator orbit(
        astro::circular_orbit(560.0e3, deg2rad(97.6), 0.3, 0.1), astro::instant::j2000());
    double t = 0.0;
    for (auto _ : state) {
        t += 10.0;
        benchmark::DoNotOptimize(orbit.state_at(astro::instant::j2000().plus_seconds(t)));
    }
}
BENCHMARK(bm_propagator_state);

void bm_flux_eval(benchmark::State& state)
{
    const radiation::radiation_environment env;
    const vec3 p = astro::geodetic_to_ecef({-25.0, -50.0, 560.0e3});
    for (auto _ : state) {
        benchmark::DoNotOptimize(env.flux(p, 1.0));
    }
}
BENCHMARK(bm_flux_eval);

void bm_flux_map_1deg(benchmark::State& state)
{
    const radiation::radiation_environment env;
    const auto t = astro::instant::from_calendar(2014, 3, 15);
    for (auto _ : state) {
        benchmark::DoNotOptimize(radiation::flux_map_at_altitude(env, 560.0e3, 1.0, t));
    }
}
BENCHMARK(bm_flux_map_1deg)->Unit(benchmark::kMillisecond);

void bm_max_flux_map_32days(benchmark::State& state)
{
    const radiation::radiation_environment env;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            radiation::max_electron_flux_map(env, 560.0e3, 1.0, 32, 7));
    }
}
BENCHMARK(bm_max_flux_map_32days)->Unit(benchmark::kMillisecond);

void bm_daily_fluence(benchmark::State& state)
{
    const radiation::radiation_environment env;
    const auto day = astro::instant::from_calendar(2014, 3, 15);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            radiation::daily_fluence(env, 560.0e3, deg2rad(65.0), day, 0.0, 10.0));
    }
}
BENCHMARK(bm_daily_fluence)->Unit(benchmark::kMillisecond);

void bm_plane_mask(benchmark::State& state)
{
    const geo::lat_tod_grid grid(0.5, 0.25);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::plane_coverage_mask(grid, deg2rad(97.6), 13.5, deg2rad(7.25)));
    }
}
BENCHMARK(bm_plane_mask);

void bm_greedy_small(benchmark::State& state)
{
    demand::demand_options opts;
    opts.lat_cell_deg = 2.0;
    opts.tod_cell_h = 1.0;
    const demand::demand_model model(bench_population(), opts);
    const auto problem = core::make_design_problem(model, 5.0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::greedy_ss_cover(problem));
    }
}
BENCHMARK(bm_greedy_small)->Unit(benchmark::kMillisecond);

/// 40x40 Walker grid shared by the scenario-sweep benches.
const lsn::lsn_topology& bench_walker_grid()
{
    static const lsn::lsn_topology topo = [] {
        constellation::walker_parameters p;
        p.altitude_m = 550.0e3;
        p.inclination_rad = deg2rad(53.0);
        p.n_planes = 40;
        p.sats_per_plane = 40;
        p.phasing_f = 1;
        return lsn::build_walker_grid_topology(p);
    }();
    return topo;
}

constexpr double sweep_step_s = 3600.0; // hourly steps over one day

void bm_scenario_sweep(benchmark::State& state)
{
    // 12-station all-pairs day sweep on the 40x40 grid through the batched
    // engine: one propagation pass, one snapshot and 11 Dijkstra sources per
    // step.
    const auto& topo = bench_walker_grid();
    const auto stations = lsn::default_ground_stations();
    lsn::scenario_sweep_options opts;
    opts.step_s = sweep_step_s;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            lsn::run_scenario_sweep(topo, stations, astro::instant::j2000(), {}, opts));
    }
}
BENCHMARK(bm_scenario_sweep)->Unit(benchmark::kMillisecond);

void bm_scenario_sweep_baseline(benchmark::State& state)
{
    // The pre-engine route to the same all-pairs day sweep: one time loop
    // per station pair (as simulate_pair_latency used to run), every step
    // rebuilding the snapshot from scratch through snapshot_at with its
    // per-call propagator construction.
    const auto& topo = bench_walker_grid();
    const auto stations = lsn::default_ground_stations();
    const auto epoch = astro::instant::j2000();
    const int n = static_cast<int>(stations.size());
    for (auto _ : state) {
        double total_latency = 0.0;
        for (int a = 0; a + 1 < n; ++a) {
            for (int b = a + 1; b < n; ++b) {
                for (double t_off = 0.0; t_off < 86400.0; t_off += sweep_step_s) {
                    const auto snap = lsn::snapshot_at(
                        topo, stations, epoch, epoch.plus_seconds(t_off), deg2rad(30.0));
                    const auto route = lsn::ground_route(snap, a, b);
                    if (route.reachable) total_latency += route.latency_s;
                }
            }
        }
        benchmark::DoNotOptimize(total_latency);
    }
}
BENCHMARK(bm_scenario_sweep_baseline)->Unit(benchmark::kMillisecond);

/// Prebuilt day sweep of snapshots + diurnal matrices for the traffic
/// assignment benches: both contenders consume identical inputs, so the
/// measured contrast is purely the assignment algorithm.
struct traffic_bench_inputs {
    std::vector<lsn::network_snapshot> snapshots;
    std::vector<traffic::traffic_matrix> matrices;
    traffic::capacity_options capacity;
};

const traffic_bench_inputs& bench_traffic_inputs()
{
    static const traffic_bench_inputs inputs = [] {
        traffic_bench_inputs in;
        const auto& topo = bench_walker_grid();
        const auto stations = traffic::stations_from_cities(12);
        const auto epoch = astro::instant::j2000();
        const lsn::snapshot_builder builder(topo, stations, epoch, deg2rad(30.0));
        const auto offsets = lsn::sweep_offsets(86400.0, sweep_step_s);
        const auto positions = builder.positions_at_offsets(offsets);
        const demand::demand_model model(bench_population());
        traffic::traffic_matrix_options matrix_opts;
        // Offered load well past the link capacities below, so every
        // water-filling round stays busy in both contenders.
        matrix_opts.total_demand_gbps = 4000.0;
        for (std::size_t i = 0; i < offsets.size(); ++i) {
            in.snapshots.push_back(builder.snapshot_from_positions(positions[i]));
            in.matrices.push_back(traffic::build_traffic_matrix(
                model, stations, epoch.plus_seconds(offsets[i]), matrix_opts));
        }
        return in;
    }();
    return inputs;
}

void bm_traffic_assign(benchmark::State& state)
{
    // Capacity-aware day sweep on the 40x40 grid, 12 gateways: per round one
    // Dijkstra tree per source gateway serves all of its pairs.
    const auto& in = bench_traffic_inputs();
    for (auto _ : state) {
        double delivered = 0.0;
        for (std::size_t i = 0; i < in.snapshots.size(); ++i)
            delivered +=
                traffic::assign_flows(in.snapshots[i], in.matrices[i], in.capacity)
                    .delivered_gbps;
        benchmark::DoNotOptimize(delivered);
    }
}
BENCHMARK(bm_traffic_assign)->Unit(benchmark::kMillisecond);

void bm_traffic_assign_baseline(benchmark::State& state)
{
    // The naive route to the same assignment: every (pair, round) rebuilds
    // the congestion-weighted graph and runs its own point-to-point Dijkstra.
    const auto& in = bench_traffic_inputs();
    for (auto _ : state) {
        double delivered = 0.0;
        for (std::size_t i = 0; i < in.snapshots.size(); ++i)
            delivered += traffic::assign_flows_per_pair_baseline(
                             in.snapshots[i], in.matrices[i], in.capacity)
                             .delivered_gbps;
        benchmark::DoNotOptimize(delivered);
    }
}
BENCHMARK(bm_traffic_assign_baseline)->Unit(benchmark::kMillisecond);

/// Prebuilt day sweep for the bulk-transfer benches: both contenders route
/// the same 12 antipodal-ish gateway pulses over identical snapshots, so
/// the contrast is the time-expanded solver vs per-epoch replication.
struct bulk_bench_inputs {
    std::vector<lsn::network_snapshot> snapshots;
    std::vector<double> offsets;
    std::vector<tempo::bulk_transfer_request> requests;
    tempo::bulk_route_options options;
    tempo::time_expanded_graph graph;
};

bulk_bench_inputs& bench_bulk_inputs()
{
    static bulk_bench_inputs inputs = [] {
        bulk_bench_inputs in;
        const auto& topo = bench_walker_grid();
        const auto stations = traffic::stations_from_cities(12);
        const auto epoch = astro::instant::j2000();
        const lsn::snapshot_builder builder(topo, stations, epoch, deg2rad(30.0));
        in.offsets = lsn::sweep_offsets(86400.0, sweep_step_s);
        const auto positions = builder.positions_at_offsets(in.offsets);
        in.snapshots.reserve(in.offsets.size());
        for (const auto& pos : positions)
            in.snapshots.push_back(builder.snapshot_from_positions(pos));
        in.options.sat_buffer_gb = 256.0;
        // At this volume the day grid is UNcontended: both contenders
        // deliver 100% (raise the pulses ~10x and the per-step greedy keeps
        // delivering while the expanded solver hits the 256 GB buffer cap).
        // The pair therefore measures solver cost, not delivery quality —
        // see the note on bm_bulk_route_per_step_floor.
        for (int g = 0; g < 12; ++g)
            in.requests.push_back({g, (g + 6) % 12, 2.0e5, 0.0, 86400.0});
        in.graph = tempo::build_time_expanded_graph(in.snapshots, in.offsets, {},
                                                    in.options);
        return in;
    }();
    return inputs;
}

void bm_bulk_route(benchmark::State& state)
{
    // Earliest-completion augmentation over the residual time-expanded
    // graph; the graph build is paid once outside the loop, reset_loads
    // restores a clean residual state per iteration.
    auto& in = bench_bulk_inputs();
    for (auto _ : state) {
        in.graph.reset_loads();
        benchmark::DoNotOptimize(
            tempo::route_bulk_transfers(in.graph, in.requests).delivered_gb);
    }
}
BENCHMARK(bm_bulk_route)->Unit(benchmark::kMillisecond);

void bm_bulk_route_per_step_floor(benchmark::State& state)
{
    // Per-epoch replication floor: replay the per-snapshot greedy
    // (`assign_flows`) on every epoch's remaining volumes, no buffering.
    //
    // Unlike the other *_baseline pairs this is NOT a slower route to the
    // same answer — it is a cheaper solver for a weaker model, and on this
    // uncontended fixture it is ~1.4x FASTER than bm_bulk_route (the
    // expanded solver walks 25 layers of residual time-expanded arcs per
    // augmentation; the floor runs one small Dijkstra pass per step). The
    // expanded solver earns its cost only when buffering matters: under
    // contention or outages it delivers volume the floor cannot move at
    // all (see the sf_gain column in the network_day failure table).
    const auto& in = bench_bulk_inputs();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            tempo::route_bulk_transfers_per_step_baseline(in.snapshots, in.offsets,
                                                          in.requests, in.options)
                .delivered_gb);
    }
}
BENCHMARK(bm_bulk_route_per_step_floor)->Unit(benchmark::kMillisecond);

/// Shared fixture of the campaign benches: a 24x24 Walker grid, 6 gateways,
/// a half-hourly day grid, four failure scenarios and the three metric
/// engines. Both contenders compute identical metrics; the contrast is one
/// shared evaluation context vs the three legacy one-shot entry points run
/// back-to-back per scenario (each re-paying propagator construction, the
/// batched propagation pass and the failure draw).
/// Static-storage demand model: the traffic engine keeps a reference, so
/// its lifetime must outlive the fixture struct the plan lives in.
const demand::demand_model& bench_demand()
{
    static const demand::demand_model model(bench_population());
    return model;
}

struct campaign_bench_inputs {
    lsn::lsn_topology topo;
    std::vector<lsn::ground_station> stations;
    lsn::scenario_sweep_options grid;
    traffic::traffic_sweep_options traffic_opts;
    std::vector<tempo::bulk_transfer_request> requests;
    tempo::bulk_route_options bulk_opts;
    exp::experiment_plan plan;
};

const campaign_bench_inputs& bench_campaign_inputs()
{
    static const campaign_bench_inputs inputs = [] {
        campaign_bench_inputs in;
        constellation::walker_parameters p;
        p.altitude_m = 550.0e3;
        p.inclination_rad = deg2rad(53.0);
        p.n_planes = 24;
        p.sats_per_plane = 24;
        p.phasing_f = 1;
        in.topo = lsn::build_walker_grid_topology(p);
        in.stations = traffic::stations_from_cities(6);
        in.grid.step_s = 1800.0;
        in.grid.min_elevation_rad = deg2rad(30.0);
        in.traffic_opts.matrix.total_demand_gbps = 2000.0;
        in.bulk_opts.sat_buffer_gb = 256.0;
        for (int g = 0; g < 6; ++g)
            in.requests.push_back({g, (g + 3) % 6, 5.0e4, 0.0, 86400.0});

        in.plan.scenarios.push_back({"baseline", {}});
        lsn::failure_scenario loss;
        loss.mode = lsn::failure_mode::random_loss;
        loss.loss_fraction = 0.2;
        loss.seed = 1;
        in.plan.scenarios.push_back({"random_20", loss});
        lsn::failure_scenario attack;
        attack.mode = lsn::failure_mode::plane_attack;
        attack.planes_attacked = 3;
        attack.seed = 1;
        in.plan.scenarios.push_back({"attack_3", attack});
        lsn::failure_scenario radiation;
        radiation.mode = lsn::failure_mode::radiation_poisson;
        radiation.plane_daily_fluence.assign(24, 2.0e10);
        radiation.horizon_days = 5.0 * 365.25;
        radiation.seed = 1;
        in.plan.scenarios.push_back({"radiation_5y", radiation});

        in.plan.engines = {
            std::make_shared<exp::survivability_engine>(),
            std::make_shared<exp::traffic_engine>(bench_demand(), in.traffic_opts),
            std::make_shared<exp::bulk_engine>(in.requests, in.bulk_opts)};
        return in;
    }();
    return inputs;
}

void bm_campaign(benchmark::State& state)
{
    // 4 scenarios x 3 engines through one run_campaign: the context pays
    // propagator construction, the batched propagation pass and the four
    // failure draws once, and the 12 cells fan out over the pool.
    const auto& in = bench_campaign_inputs();
    for (auto _ : state) {
        const exp::evaluation_context context(in.topo, in.stations,
                                              astro::instant::j2000(), in.grid);
        benchmark::DoNotOptimize(exp::run_campaign(in.plan, context).cells.size());
    }
}
BENCHMARK(bm_campaign)->Unit(benchmark::kMillisecond);

void bm_instrumented_campaign(benchmark::State& state)
{
    // bm_campaign with the full observability stack hot: counters always
    // run; this also turns the runtime tracing gate on, so every span
    // records timestamps into the per-thread buffers. The delta vs
    // bm_campaign is the all-in instrumentation overhead (acceptance bar:
    // within a few percent).
    const auto& in = bench_campaign_inputs();
    for (auto _ : state) {
        obs::trace_reset();
        obs::set_tracing_enabled(true);
        const exp::evaluation_context context(in.topo, in.stations,
                                              astro::instant::j2000(), in.grid);
        benchmark::DoNotOptimize(exp::run_campaign(in.plan, context).cells.size());
        obs::set_tracing_enabled(false);
    }
    obs::trace_reset();
}
BENCHMARK(bm_instrumented_campaign)->Unit(benchmark::kMillisecond);

void bm_campaign_separate_baseline(benchmark::State& state)
{
    // The pre-campaign route to the same 12 cells: the three one-shot
    // engine entry points run back-to-back per scenario, each rebuilding
    // its own builder, propagation pass and failure mask.
    const auto& in = bench_campaign_inputs();
    for (auto _ : state) {
        double sink = 0.0;
        for (const auto& spec : in.plan.scenarios) {
            sink += lsn::run_scenario_sweep(in.topo, in.stations,
                                            astro::instant::j2000(), spec.scenario,
                                            in.grid)
                        .metrics.pair_reachable_fraction;
            sink += traffic::run_traffic_sweep(in.topo, in.stations,
                                               astro::instant::j2000(), spec.scenario,
                                               bench_demand(), in.grid, in.traffic_opts)
                        .metrics.delivered_gbps_mean;
            sink += tempo::run_bulk_sweep(in.topo, in.stations, astro::instant::j2000(),
                                          spec.scenario, in.requests, in.grid,
                                          in.bulk_opts)
                        .routing.delivered_gb;
        }
        benchmark::DoNotOptimize(sink);
    }
}
BENCHMARK(bm_campaign_separate_baseline)->Unit(benchmark::kMillisecond);

void bm_cascade_timeline(benchmark::State& state)
{
    // Per-step Kessler draw over a full day on the 40x40 grid: the cost of
    // growing a 25-row failure timeline (debris bookkeeping + one split RNG
    // stream per step) instead of one static mask.
    const auto& topo = bench_walker_grid();
    const auto offsets = lsn::sweep_offsets(86400.0, sweep_step_s);
    lsn::failure_scenario cascade;
    cascade.mode = lsn::failure_mode::kessler_cascade;
    cascade.cascade_initial_hits = 4;
    cascade.cascade_base_daily_hazard = 0.2;
    cascade.cascade_escalation = 0.1;
    cascade.seed = 7;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            lsn::sample_failure_timeline(topo, cascade, offsets,
                                         astro::instant::j2000())
                .final_n_failed());
    }
}
BENCHMARK(bm_cascade_timeline)->Unit(benchmark::kMicrosecond);

void bm_adversary(benchmark::State& state)
{
    // Greedy adversary on the campaign fixture's 24x24 grid: each strike
    // scores every remaining plane against the delivered-traffic oracle on
    // an 8:1-strided evaluation grid — the oracle dominates, so this tracks
    // the marginal-damage search, not the RNG.
    const auto& in = bench_campaign_inputs();
    const lsn::snapshot_builder builder(in.topo, in.stations,
                                        astro::instant::j2000(),
                                        in.grid.min_elevation_rad);
    const auto offsets = lsn::sweep_offsets(86400.0, 3600.0);
    const auto positions = builder.positions_at_offsets(offsets);
    lsn::failure_scenario adversary;
    adversary.mode = lsn::failure_mode::greedy_adversary;
    adversary.adversary_budget = 1;
    adversary.adversary_eval_stride = 8;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            traffic::generate_adversary_timeline(builder, offsets, positions,
                                                 adversary, bench_demand(),
                                                 in.traffic_opts)
                .final_n_failed());
    }
}
BENCHMARK(bm_adversary)->Unit(benchmark::kMillisecond);

void bm_dijkstra(benchmark::State& state)
{
    // Random-ish ring-of-cliques graph of ~1000 nodes.
    lsn::network_snapshot snap;
    const int n = 1000;
    snap.n_satellites = n;
    snap.positions_ecef_m.resize(static_cast<std::size_t>(n));
    snap.adjacency.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        for (int k = 1; k <= 4; ++k) {
            const int j = (i + k) % n;
            snap.adjacency[static_cast<std::size_t>(i)].push_back({j, 0.001 * k});
            snap.adjacency[static_cast<std::size_t>(j)].push_back({i, 0.001 * k});
        }
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(lsn::shortest_route(snap, 0, n / 2));
    }
}
BENCHMARK(bm_dijkstra)->Unit(benchmark::kMicrosecond);

void bm_lanczos(benchmark::State& state)
{
    // λ₂ of the 40x40 grid's 1600-node static Laplacian: the Lanczos
    // sweep with full reorthogonalization that the percolation analyzer
    // pays per step when compute_lambda2 is on. The CSR assembly is paid
    // once outside the loop, so this tracks the eigensolver alone.
    const spectral::csr_matrix laplacian =
        spectral::build_laplacian(bench_walker_grid());
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            spectral::algebraic_connectivity(laplacian).lambda2);
    }
}
BENCHMARK(bm_lanczos)->Unit(benchmark::kMillisecond);

void bm_percolation(benchmark::State& state)
{
    // Union-find + susceptibility + clustering over the 40x40 grid under a
    // 6-plane attack, λ₂ off: the per-step structural pass of the
    // percolation engine minus the eigensolve (tracked by bm_lanczos).
    const auto& topo = bench_walker_grid();
    lsn::failure_scenario attack;
    attack.mode = lsn::failure_mode::plane_attack;
    attack.planes_attacked = 6;
    attack.seed = 7;
    const auto failed = lsn::sample_failures(topo, attack);
    spectral::percolation_options opts;
    opts.compute_lambda2 = false;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            spectral::analyze_percolation(topo, failed, opts).susceptibility);
    }
}
BENCHMARK(bm_percolation)->Unit(benchmark::kMicrosecond);

void bm_session_assign(benchmark::State& state)
{
    // One serving step at production session scale: a 1M-session grid
    // (sampled once, outside the loop — the per-sweep cost) packed onto the
    // 40x40 grid's beams. The gate the serving engine lives under: one
    // step's assignment must sustain >= 1M sessions with memory O(populated
    // cells), so the measured quantity is ns per (session x step).
    const auto& topo = bench_walker_grid();
    const lsn::snapshot_builder builder(topo, lsn::default_ground_stations(),
                                        astro::instant::j2000(), deg2rad(25.0));
    const std::vector<double> offsets{0.0};
    const auto positions = builder.positions_at_offsets(offsets);
    serve::serving_options opts;
    opts.n_sessions = 1000000;
    opts.seed = 1;
    const auto grid = serve::sample_session_grid(bench_population(), opts);
    const auto t = builder.epoch();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            serve::assign_beams(grid, positions[0], {}, t, opts).delivered_gbps);
    }
    state.counters["sessions"] =
        benchmark::Counter(static_cast<double>(grid.total_sessions));
}
BENCHMARK(bm_session_assign)->Unit(benchmark::kMillisecond);

/// Console reporter that also collects per-benchmark ns/op and writes
/// BENCH_perf.json on teardown.
class perf_json_reporter : public benchmark::ConsoleReporter {
public:
    explicit perf_json_reporter(std::string path) : path_(std::move(path)) {}

    void ReportRuns(const std::vector<Run>& runs) override
    {
        // Only Run members present in every google-benchmark release are
        // touched here (error_occurred was removed in 1.8, skipped added
        // there) so the bench builds against old and new libbenchmark.
        for (const Run& run : runs) {
            if (run.run_type != Run::RT_Iteration) continue;
            const double per_op_s =
                run.iterations > 0
                    ? run.real_accumulated_time / static_cast<double>(run.iterations)
                    : 0.0;
            // Repetitions of one benchmark share a name: accumulate and emit
            // the mean so the JSON has one key per benchmark.
            const std::string name = run.benchmark_name();
            auto it = std::find_if(results_.begin(), results_.end(),
                                   [&](const auto& r) { return r.name == name; });
            if (it == results_.end()) it = results_.insert(results_.end(), {name, 0.0, 0});
            it->ns_sum += per_op_s * 1e9;
            ++it->count;
        }
        ConsoleReporter::ReportRuns(runs);
    }

    void Finalize() override
    {
        ConsoleReporter::Finalize();
        std::vector<std::pair<std::string, double>> means;
        means.reserve(results_.size());
        for (const auto& r : results_)
            means.emplace_back(r.name, r.ns_sum / static_cast<double>(r.count));
        if (!bench::write_bench_json(path_, means))
            std::cerr << "failed to write " << path_ << "\n";
        else
            std::cout << "wrote " << path_ << " (" << means.size() << " benchmarks)\n";
    }

private:
    struct accum {
        std::string name;
        double ns_sum = 0.0;
        int count = 0;
    };
    std::string path_;
    std::vector<accum> results_;
};

} // namespace

int main(int argc, char** argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    const char* json_path = std::getenv("SSPLANE_BENCH_JSON");
    perf_json_reporter reporter(json_path ? json_path : "BENCH_perf.json");
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();
    return 0;
}
