// Performance microbenchmarks (google-benchmark) for the library's hot
// paths: propagation, flux evaluation, plane masks, greedy iterations and
// routing.
#include <benchmark/benchmark.h>

#include "astro/propagator.h"
#include "core/design_problem.h"
#include "core/greedy_cover.h"
#include "core/plane_trace.h"
#include "demand/demand_model.h"
#include "demand/population.h"
#include "geo/coverage.h"
#include "lsn/routing.h"
#include "radiation/belts.h"
#include "util/angles.h"

using namespace ssplane;

namespace {

const demand::population_model& bench_population()
{
    static const demand::population_model model;
    return model;
}

void bm_propagator_state(benchmark::State& state)
{
    const astro::j2_propagator orbit(
        astro::circular_orbit(560.0e3, deg2rad(97.6), 0.3, 0.1), astro::instant::j2000());
    double t = 0.0;
    for (auto _ : state) {
        t += 10.0;
        benchmark::DoNotOptimize(orbit.state_at(astro::instant::j2000().plus_seconds(t)));
    }
}
BENCHMARK(bm_propagator_state);

void bm_flux_eval(benchmark::State& state)
{
    const radiation::radiation_environment env;
    const vec3 p = astro::geodetic_to_ecef({-25.0, -50.0, 560.0e3});
    for (auto _ : state) {
        benchmark::DoNotOptimize(env.flux(p, 1.0));
    }
}
BENCHMARK(bm_flux_eval);

void bm_plane_mask(benchmark::State& state)
{
    const geo::lat_tod_grid grid(0.5, 0.25);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::plane_coverage_mask(grid, deg2rad(97.6), 13.5, deg2rad(7.25)));
    }
}
BENCHMARK(bm_plane_mask);

void bm_greedy_small(benchmark::State& state)
{
    demand::demand_options opts;
    opts.lat_cell_deg = 2.0;
    opts.tod_cell_h = 1.0;
    const demand::demand_model model(bench_population(), opts);
    const auto problem = core::make_design_problem(model, 5.0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::greedy_ss_cover(problem));
    }
}
BENCHMARK(bm_greedy_small)->Unit(benchmark::kMillisecond);

void bm_dijkstra(benchmark::State& state)
{
    // Random-ish ring-of-cliques graph of ~1000 nodes.
    lsn::network_snapshot snap;
    const int n = 1000;
    snap.n_satellites = n;
    snap.positions_ecef_m.resize(static_cast<std::size_t>(n));
    snap.adjacency.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        for (int k = 1; k <= 4; ++k) {
            const int j = (i + k) % n;
            snap.adjacency[static_cast<std::size_t>(i)].push_back({j, 0.001 * k});
            snap.adjacency[static_cast<std::size_t>(j)].push_back({i, 0.001 * k});
        }
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(lsn::shortest_route(snap, 0, n / 2));
    }
}
BENCHMARK(bm_dijkstra)->Unit(benchmark::kMicrosecond);

} // namespace

BENCHMARK_MAIN();
