// Paper Figure 10: median per-satellite daily radiation fluence for the
// constellations of Figure 9 (electrons and protons), SS vs WD.
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "util/angles.h"
#include "core/evaluator.h"
#include "util/csv.h"
#include "util/table.h"

using namespace ssplane;

int main()
{
    bench::stopwatch timer;
    std::cout << "# Figure 10: median per-satellite daily fluence vs multiplier\n\n";

    const auto& model = bench::paper_demand();
    core::walker_baseline_designer wd_designer;
    const radiation::radiation_environment env;
    const auto day = astro::instant::from_calendar(2014, 3, 15);
    core::radiation_eval_options rad;
    rad.step_s = 20.0;
    rad.max_sampled_planes = 24;

    csv_writer csv(std::cout,
                   {"bandwidth_multiplier", "ss_electron", "wd_electron", "ss_proton",
                    "wd_proton", "electron_reduction_percent"});

    double last_reduction = 0.0;
    double first_wd_e = 0.0;
    double last_wd_e = 0.0;
    bool ss_flat = true;
    double first_ss_e = 0.0;

    for (double b : {10.0, 50.0, 200.0, 1000.0}) {
        const auto cmp = core::compare_designs(model, b, wd_designer);
        const auto ss = core::ss_constellation_radiation(cmp.ss, env, day, rad);
        const auto wd = core::wd_constellation_radiation(cmp.wd, env, day, rad);
        const double reduction =
            100.0 * (1.0 - ss.median_electron_fluence / wd.median_electron_fluence);
        csv.row({b, ss.median_electron_fluence, wd.median_electron_fluence,
                 ss.median_proton_fluence, wd.median_proton_fluence, reduction});
        last_reduction = reduction;
        if (first_wd_e == 0.0) first_wd_e = wd.median_electron_fluence;
        last_wd_e = wd.median_electron_fluence;
        if (first_ss_e == 0.0) first_ss_e = ss.median_electron_fluence;
        if (std::abs(ss.median_electron_fluence - first_ss_e) > 0.1 * first_ss_e)
            ss_flat = false;
        std::cerr << "  B=" << b << " done (" << timer.seconds() << " s)\n";
    }

    // The paper's headline ~23% compares the SS design against the
    // population-peak-targeted (low-inclination) orbits; compute that
    // number directly from the same-day fluences.
    const auto e_at = [&](double inc_deg) {
        return radiation::daily_fluence(env, 560.0e3, deg2rad(inc_deg), day, 0.0, 20.0)
            .electrons_cm2_mev;
    };
    const double e30 = e_at(30.0);
    const double e_ss = e_at(97.604);
    const double reduction_vs_30 = 100.0 * (1.0 - e_ss / e30);

    std::cout << "\n";
    table_printer summary({"quantity", "paper", "measured"});
    summary.row({"SS median electron fluence", "flat in B (same inclination)",
                 ss_flat ? "flat" : "varies"});
    summary.row({"electron reduction vs WD shell mix", "-",
                 format_number(last_reduction, 3) + "%"});
    summary.row({"electron reduction vs 30-deg (pop-peak) shells", "~23%",
                 format_number(reduction_vs_30, 3) + "%"});
    summary.print(std::cout);
    std::cout << "\n";

    bench::check("SS electron dose flat across multipliers (paper: constant median)",
                 ss_flat);
    bench::check("WD median electron dose above SS at every multiplier",
                 last_wd_e > first_ss_e && first_wd_e > first_ss_e);
    bench::check("SS cuts dose vs the WD mix by a meaningful margin (>=5%)",
                 last_reduction > 5.0 && last_reduction < 35.0);
    bench::check("SS vs population-peak 30-deg shells ~23% (paper headline, +-5%)",
                 reduction_vs_30 > 18.0 && reduction_vs_30 < 28.0);

    std::cout << "elapsed_s=" << timer.seconds() << "\n";
    return 0;
}
