// Paper Figure 1: minimum satellites to cover a single repeat ground-track
// (classified uniform / non-uniform) vs the uniform-coverage Walker-delta
// total, across LEO altitudes at 65 degrees inclination.
#include <future>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "constellation/coverage_analysis.h"
#include "constellation/rgt.h"
#include "util/angles.h"
#include "util/csv.h"
#include "util/table.h"

using namespace ssplane;

int main()
{
    bench::stopwatch timer;
    const double inclination = deg2rad(65.0);

    std::cout << "# Figure 1: RGT track coverage vs Walker-delta uniform coverage\n";
    std::cout << "# inclination 65 deg, min elevation 30 deg\n\n";

    // --- RGT series ---
    const auto designs = constellation::enumerate_rgts(inclination, 450.0e3, 2050.0e3, 3);
    csv_writer rgt_csv(std::cout, {"series", "revolutions", "days", "altitude_km",
                                   "n_satellites"});
    int n_non_uniform = 0;
    int sats_13_1 = 0;
    std::vector<std::pair<double, int>> rgt_points; // altitude, count
    for (const auto& d : designs) {
        const auto sizing = constellation::size_rgt_track_coverage(d);
        if (!sizing.gives_uniform_coverage) ++n_non_uniform;
        if (d.revolutions == 13 && d.days == 1) sats_13_1 = sizing.n_satellites;
        rgt_points.emplace_back(d.altitude_m, sizing.n_satellites);
        rgt_csv.row_text({sizing.gives_uniform_coverage ? "rgt_uniform" : "rgt_nonuniform",
                          format_number(d.revolutions), format_number(d.days),
                          format_number(d.altitude_m / 1000.0, 6),
                          format_number(sizing.n_satellites)});
    }

    // --- Walker series (sized in parallel across altitudes) ---
    std::vector<double> altitudes;
    for (double h = 500.0e3; h <= 2000.0e3; h += 150.0e3) altitudes.push_back(h);

    auto size_at = [&](double altitude) {
        constellation::coverage_check_options opts;
        opts.min_elevation_rad = deg2rad(30.0);
        opts.max_latitude_deg = 65.0;
        opts.grid_spacing_deg = 5.0;
        opts.n_time_steps = 64;
        return constellation::size_walker_for_coverage(altitude, inclination, opts);
    };
    std::vector<std::future<constellation::walker_size_result>> futures;
    futures.reserve(altitudes.size());
    for (double h : altitudes)
        futures.push_back(std::async(std::launch::async, size_at, h));

    int walker_at_1200 = 0;
    std::vector<std::pair<double, int>> walker_points;
    for (std::size_t i = 0; i < altitudes.size(); ++i) {
        const auto result = futures[i].get();
        if (!result.found) continue;
        walker_points.emplace_back(altitudes[i], result.total);
        if (std::abs(altitudes[i] - 1250.0e3) < 100.0e3 && walker_at_1200 == 0)
            walker_at_1200 = result.total;
        rgt_csv.row_text({"walker_total", "0", "0",
                          format_number(altitudes[i] / 1000.0, 6),
                          format_number(result.total)});
    }

    // --- Summary + paper-shape checks ---
    std::cout << "\n";
    table_printer summary({"quantity", "paper", "measured"});
    summary.row({"non-uniform RGTs in LEO", "3", format_number(n_non_uniform)});
    summary.row({"sats to cover 13:1 RGT (~1220 km)", ">=356", format_number(sats_13_1)});
    summary.row({"Walker total near 1215 km", ">=200", format_number(walker_at_1200)});
    summary.print(std::cout);
    std::cout << "\n";

    bool rgt_above_walker = true;
    for (const auto& [alt, count] : rgt_points) {
        // Compare against the nearest Walker altitude.
        int nearest_walker = 0;
        double best = 1e12;
        for (const auto& [walt, wcount] : walker_points) {
            if (std::abs(walt - alt) < best) {
                best = std::abs(walt - alt);
                nearest_walker = wcount;
            }
        }
        if (count <= nearest_walker) rgt_above_walker = false;
    }

    bench::check("exactly three non-uniform RGTs (paper: 'only three')",
                 n_non_uniform == 3);
    bench::check("13:1 RGT needs ~356 satellites (paper >=356; ours within 20%)",
                 sats_13_1 > 285 && sats_13_1 < 430);
    bench::check("RGT track coverage strictly above Walker at every altitude",
                 rgt_above_walker);
    bench::check("Walker near 1215 km is O(200) satellites",
                 walker_at_1200 >= 120 && walker_at_1200 <= 320);

    std::cout << "elapsed_s=" << timer.seconds() << "\n";
    return 0;
}
