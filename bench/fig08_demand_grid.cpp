// Paper Figure 8: spatiotemporal demand as a function of latitude and local
// time of day (% of the maximum cell).
#include <iostream>

#include "bench_util.h"
#include "util/csv.h"

using namespace ssplane;

int main()
{
    bench::stopwatch timer;
    std::cout << "# Figure 8: sun-relative demand grid (percent of max)\n\n";

    const auto grid = bench::paper_demand().sun_relative_grid();

    // Emit at 2 deg x 0.5 h to keep the dump manageable.
    csv_writer csv(std::cout, {"latitude_deg", "tod_h", "demand_percent"});
    for (std::size_t r = 0; r < grid.n_lat(); r += 4) {
        for (std::size_t c = 0; c < grid.n_tod(); c += 2) {
            csv.row({grid.latitude_center_deg(r), grid.tod_center_h(c),
                     100.0 * grid.field()(r, c)});
        }
    }

    const auto peak = grid.field().argmax();
    const double peak_lat = grid.latitude_center_deg(peak.row);
    const double peak_tod = grid.tod_center_h(peak.col);

    // Demand mass by quadrant of the day.
    double day_mass = 0.0;   // 08-24 local
    double night_mass = 0.0; // 00-08 local
    for (std::size_t r = 0; r < grid.n_lat(); ++r) {
        for (std::size_t c = 0; c < grid.n_tod(); ++c) {
            const double tod = grid.tod_center_h(c);
            if (tod >= 8.0) {
                day_mass += grid.field()(r, c);
            } else {
                night_mass += grid.field()(r, c);
            }
        }
    }

    std::cout << "\npeak_latitude_deg=" << peak_lat << "\npeak_tod_h=" << peak_tod
              << "\nday_mass_over_night_mass=" << day_mass / (night_mass * 2.0)
              << "\n\n";

    // Paper Fig. 8: demand clusters at the populated latitudes and in
    // waking/evening hours.
    bench::check("peak cell in the South-Asia latitude band",
                 peak_lat > 18.0 && peak_lat < 32.0);
    bench::check("peak cell in waking/evening hours", peak_tod > 9.0 && peak_tod < 23.0);
    bench::check("waking hours (2/3 of day) carry > 2/3 of demand mass",
                 day_mass / (day_mass + night_mass) > 2.0 / 3.0);

    std::cout << "elapsed_s=" << timer.seconds() << "\n";
    return 0;
}
