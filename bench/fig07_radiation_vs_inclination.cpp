// Paper Figure 7: estimated daily radiation exposure (electrons, protons)
// for 560 km circular orbits as a function of inclination.
#include <iostream>
#include <map>

#include "bench_util.h"
#include "radiation/fluence.h"
#include "util/angles.h"
#include "util/csv.h"
#include "util/table.h"

using namespace ssplane;

int main()
{
    bench::stopwatch timer;
    std::cout << "# Figure 7: daily fluence vs inclination at 560 km\n\n";

    const radiation::radiation_environment env;
    const auto day = astro::instant::from_calendar(2014, 3, 15); // active period

    csv_writer csv(std::cout,
                   {"inclination_deg", "electron_fluence_cm2_mev", "proton_fluence_cm2_mev"});
    std::map<double, radiation::fluence_result> results;
    for (double inc = 45.0; inc <= 100.0; inc += 2.5) {
        const auto f = radiation::daily_fluence(env, 560.0e3, deg2rad(inc), day, 0.0, 20.0);
        results[inc] = f;
        csv.row({inc, f.electrons_cm2_mev, f.protons_cm2_mev});
    }

    // Find the electron-fluence peak inclination.
    double peak_inc = 0.0;
    double peak_val = 0.0;
    for (const auto& [inc, f] : results) {
        if (f.electrons_cm2_mev > peak_val) {
            peak_val = f.electrons_cm2_mev;
            peak_inc = inc;
        }
    }
    const double e50 = results[50.0].electrons_cm2_mev;
    const double e65 = results[65.0].electrons_cm2_mev;
    const double e975 = results[97.5].electrons_cm2_mev;
    const double p47 = results[47.5].protons_cm2_mev;
    const double p975 = results[97.5].protons_cm2_mev;

    std::cout << "\n";
    table_printer summary({"quantity", "paper", "measured"});
    summary.row({"electron fluence range (1e9)", "~4..10",
                 format_number(results.begin()->second.electrons_cm2_mev / 1e9, 3) + ".." +
                     format_number(peak_val / 1e9, 3)});
    summary.row({"electron peak inclination", "~60-70 deg", format_number(peak_inc)});
    summary.row({"proton fluence range (1e6)", "~10..35",
                 format_number(p975 / 1e6, 3) + ".." + format_number(p47 / 1e6, 3)});
    summary.print(std::cout);
    std::cout << "\n";

    // Paper Fig. 7 shape: moderate inclinations (60-70) are the electron
    // worst case; the dip sits near 45-55; high inclinations are lower.
    bench::check("electron fluence peaks at 60-80 deg (paper: 60-70 turnaround)",
                 peak_inc >= 57.5 && peak_inc <= 80.0);
    bench::check("65 deg beats the ~50 deg dip", e65 > 1.15 * e50);
    bench::check("sun-synchronous 97.5 deg below the 65 deg peak", e975 < e65);
    bench::check("electron values in the paper's decade (4e9..1e10-ish)",
                 e50 > 3.0e9 && peak_val < 2.0e10);
    bench::check("protons decline from low to high inclination", p47 > 1.3 * p975);
    bench::check("proton scale ~1e7 /cm^2/MeV/day (paper: 10M-35M)",
                 p975 > 3.0e6 && p47 < 7.0e7);

    std::cout << "elapsed_s=" << timer.seconds() << "\n";
    return 0;
}
