// Paper Figure 5: spatiotemporal demand snapshots of the Northern
// Hemisphere at hours 0, 6, 12, 18 UT, expressed in the sun-fixed frame
// (longitude relative to the subsolar meridian).
#include <iostream>

#include "astro/sun.h"
#include "bench_util.h"
#include "util/angles.h"
#include "util/csv.h"

using namespace ssplane;

int main()
{
    bench::stopwatch timer;
    const auto& model = bench::paper_demand();
    const auto day_start = astro::instant::from_calendar(2015, 6, 1, 0);

    std::cout << "# Figure 5: Northern-hemisphere demand, sun-fixed frame\n";
    std::cout << "# 5-degree aggregation; sun_lon 0 = subsolar meridian\n\n";
    csv_writer csv(std::cout, {"hour_ut", "latitude_deg", "sun_relative_lon_deg",
                               "mean_demand"});

    // For the figure's "light vs dark" check: the right-hand side of each
    // panel is the early-morning quadrant (local 00-06), which stays dark;
    // midday-to-evening (local 12-24) stays bright.
    double early_morning_total = 0.0;
    double midday_evening_total = 0.0;

    for (int hour : {0, 6, 12, 18}) {
        const astro::instant t = day_start.plus_seconds(hour * 3600.0);
        const auto snap = model.snapshot(t);
        const double subsolar_lon = astro::subsolar(t).longitude_deg;

        // Aggregate onto 5 deg x 5 deg sun-relative bins, northern hemisphere.
        constexpr int n_lat = 18;  // 0..90 in 5 deg
        constexpr int n_lon = 72;  // -180..180 in 5 deg
        std::vector<double> sum(n_lat * n_lon, 0.0);
        std::vector<int> count(n_lat * n_lon, 0);
        for (std::size_t r = snap.row_of_latitude(0.0); r < snap.n_lat(); ++r) {
            const double lat = snap.latitude_center_deg(r);
            const int bi = std::min(n_lat - 1, static_cast<int>(lat / 5.0));
            for (std::size_t c = 0; c < snap.n_lon(); ++c) {
                const double sun_lon =
                    wrap_deg_180(snap.longitude_center_deg(c) - subsolar_lon);
                const int bj =
                    std::min(n_lon - 1, static_cast<int>((sun_lon + 180.0) / 5.0));
                sum[static_cast<std::size_t>(bi * n_lon + bj)] += snap.field()(r, c);
                count[static_cast<std::size_t>(bi * n_lon + bj)] += 1;
            }
        }
        for (int i = 0; i < n_lat; ++i) {
            for (int j = 0; j < n_lon; ++j) {
                const auto k = static_cast<std::size_t>(i * n_lon + j);
                if (count[k] == 0) continue;
                const double lat = 2.5 + 5.0 * i;
                const double lon = -177.5 + 5.0 * j;
                const double mean_demand = sum[k] / count[k];
                csv.row({static_cast<double>(hour), lat, lon, mean_demand});
                // Local solar time of this sun-relative longitude.
                const double lst = wrap_hours_24(12.0 + lon / 15.0);
                if (lst < 6.0) {
                    early_morning_total += mean_demand;
                } else if (lst >= 12.0) {
                    midday_evening_total += mean_demand / 2.0; // 12 h vs 6 h span
                }
            }
        }
    }

    std::cout << "\nearly_morning_total=" << early_morning_total
              << "\nmidday_evening_total_per6h=" << midday_evening_total
              << "\nbright_dark_ratio=" << midday_evening_total / early_morning_total
              << "\n\n";

    // The figure's visual: the early-morning quadrant stays dark while the
    // midday/evening side stays bright, at every snapshot hour.
    bench::check("early-morning quadrant much dimmer than midday/evening (light vs dark)",
                 midday_evening_total > 1.5 * early_morning_total);

    std::cout << "elapsed_s=" << timer.seconds() << "\n";
    return 0;
}
