// Paper Figure 4: median and 95th-percentile of median-normalized site
// throughput as a function of local time of day (CESNET-TimeSeries24
// substitute: 283 synthetic sites x 1 year).
#include <algorithm>
#include <iostream>

#include "bench_util.h"
#include "demand/diurnal.h"
#include "util/csv.h"

using namespace ssplane;

int main()
{
    bench::stopwatch timer;
    std::cout << "# Figure 4: demand vs local time of day (283 sites, 365 days)\n\n";

    demand::site_ensemble_options opts; // paper-scale defaults
    const demand::site_ensemble ensemble(opts, 2024);
    const auto stats = ensemble.compute_tod_statistics();

    csv_writer csv(std::cout, {"hour", "median_percent", "p95_percent"});
    for (int h = 0; h < 24; ++h)
        csv.row({static_cast<double>(h), stats.median_percent[h], stats.p95_percent[h]});

    const double med_min =
        *std::min_element(stats.median_percent.begin(), stats.median_percent.end());
    const double med_max =
        *std::max_element(stats.median_percent.begin(), stats.median_percent.end());
    const double p95_max =
        *std::max_element(stats.p95_percent.begin(), stats.p95_percent.end());
    const auto trough_hour = static_cast<int>(
        std::min_element(stats.median_percent.begin(), stats.median_percent.end()) -
        stats.median_percent.begin());

    std::cout << "\nmedian_min_percent=" << med_min << "\nmedian_max_percent=" << med_max
              << "\np95_max_percent=" << p95_max << "\ntrough_hour=" << trough_hour
              << "\n\n";

    // Paper Fig. 4: median ~50% pre-dawn up to ~150-200% peak; p95 reaches
    // several hundred percent (log axis to 10k%).
    bench::check("median trough ~50% of site median in the early morning",
                 med_min > 25.0 && med_min < 80.0 && trough_hour >= 2 && trough_hour <= 7);
    bench::check("median peak 110-300% in waking hours", med_max > 110.0 && med_max < 300.0);
    bench::check("p95 heavy tail reaches >300%", p95_max > 300.0 && p95_max < 20000.0);

    std::cout << "elapsed_s=" << timer.seconds() << "\n";
    return 0;
}
