// Paper Figure 2: example repeat ground-track (15:1, ~65 deg) and the
// surface region covered by a single satellite riding it.
#include <iostream>

#include "astro/ground_track.h"
#include "bench_util.h"
#include "constellation/rgt.h"
#include "geo/coverage.h"
#include "geo/geodesy.h"
#include "geo/grid.h"
#include "util/angles.h"
#include "util/csv.h"

using namespace ssplane;

int main()
{
    bench::stopwatch timer;
    const auto design = constellation::design_rgt(15, 1, deg2rad(65.0));
    if (!design) {
        std::cout << "CHECK FAIL: 15:1 RGT design did not converge\n";
        return 1;
    }

    std::cout << "# Figure 2: 15:1 repeat ground track at "
              << design->altitude_m / 1000.0 << " km, i=65 deg\n\n";

    astro::orbital_elements el;
    el.semi_major_axis_m = astro::semi_major_axis_for_altitude_m(design->altitude_m);
    el.inclination_rad = design->inclination_rad;
    const astro::instant epoch = astro::instant::j2000();
    const astro::j2_propagator orbit(el, epoch);

    // Sampled track (the paper's plotted curve) at 60 s resolution.
    const auto track =
        astro::sample_ground_track(orbit, epoch, design->repeat_period_s, 60.0);
    csv_writer csv(std::cout, {"t_s", "latitude_deg", "longitude_deg"});
    for (const auto& p : track) {
        csv.row({p.time.seconds_since(epoch), p.ground.latitude_deg,
                 p.ground.longitude_deg});
    }

    // Swath statistics: fraction of the Earth within the coverage half-angle
    // of the track (the red region of the paper's figure).
    const auto cov = geo::coverage_geometry::from(design->altitude_m, deg2rad(30.0));
    geo::lat_lon_grid grid(2.0);
    std::size_t covered_cells = 0;
    double covered_area = 0.0;
    double band_area = 0.0;
    const double cos_lambda = std::cos(cov.earth_central_half_angle_rad);
    for (std::size_t r = 0; r < grid.n_lat(); ++r) {
        const double lat = grid.latitude_center_deg(r);
        for (std::size_t c = 0; c < grid.n_lon(); ++c) {
            const vec3 p = geo::to_unit_vector(lat, grid.longitude_center_deg(c));
            bool in_swath = false;
            for (std::size_t k = 0; k < track.size(); k += 3) {
                const vec3 t = geo::to_unit_vector(track[k].ground.latitude_deg,
                                                   track[k].ground.longitude_deg);
                if (p.dot(t) >= cos_lambda) {
                    in_swath = true;
                    break;
                }
            }
            const double area = grid.cell_area_km2(r);
            if (std::abs(lat) <= 65.0 + rad2deg(cov.earth_central_half_angle_rad))
                band_area += area;
            if (in_swath) {
                ++covered_cells;
                covered_area += area;
            }
        }
    }

    std::cout << "\nswath_half_angle_deg=" << rad2deg(cov.earth_central_half_angle_rad)
              << "\nswath_area_fraction_of_band=" << covered_area / band_area
              << "\ncovered_cells=" << covered_cells << "\n\n";

    // Paper: the 15:1 swath visibly does NOT tile the band (gaps between
    // adjacent passes) — that is the whole point of the figure.
    bench::check("15:1 swath leaves gaps (covers <95% of its latitude band)",
                 covered_area / band_area < 0.95);
    bench::check("15:1 swath still covers the majority of the band",
                 covered_area / band_area > 0.45);
    bench::check("track latitude bounded by inclination",
                 [&] {
                     for (const auto& p : track)
                         if (std::abs(p.ground.latitude_deg) > 65.5) return false;
                     return true;
                 }());

    std::cout << "elapsed_s=" << timer.seconds() << "\n";
    return 0;
}
