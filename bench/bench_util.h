// Shared helpers for the figure-reproduction benches.
//
// Every bench prints:
//   * a CSV block with the series the paper plots (machine-readable),
//   * a human-readable summary table,
//   * "CHECK" lines asserting the paper's qualitative shape, so the bench
//     output doubles as a reproduction report.
#ifndef SSPLANE_BENCH_BENCH_UTIL_H
#define SSPLANE_BENCH_BENCH_UTIL_H

#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "demand/demand_model.h"
#include "demand/population.h"

namespace ssplane::bench {

/// Shared full-resolution population model (built once per process).
inline const demand::population_model& population()
{
    static const demand::population_model model;
    return model;
}

/// Shared paper-resolution demand model (0.5 deg x 15 min).
inline const demand::demand_model& paper_demand()
{
    static const demand::demand_model model(population());
    return model;
}

/// Print a PASS/FAIL shape-check line; returns `ok` for aggregation.
inline bool check(const std::string& name, bool ok)
{
    std::cout << "CHECK " << (ok ? "PASS" : "FAIL") << ": " << name << "\n";
    return ok;
}

/// Wall-clock stopwatch for bench timing lines.
class stopwatch {
public:
    stopwatch() : start_(std::chrono::steady_clock::now()) {}
    double seconds() const
    {
        return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
            .count();
    }

private:
    std::chrono::steady_clock::time_point start_;
};

/// Write benchmark timings as machine-readable JSON: {"name": ns_per_op, ...}.
/// Future PRs diff these files to track the perf trajectory.
inline bool write_bench_json(const std::string& path,
                             const std::vector<std::pair<std::string, double>>& ns_per_op)
{
    std::ofstream out(path);
    if (!out) return false;
    out << "{\n";
    for (std::size_t i = 0; i < ns_per_op.size(); ++i) {
        out << "  \"" << ns_per_op[i].first << "\": " << ns_per_op[i].second
            << (i + 1 < ns_per_op.size() ? ",\n" : "\n");
    }
    out << "}\n";
    return static_cast<bool>(out);
}

} // namespace ssplane::bench

#endif // SSPLANE_BENCH_BENCH_UTIL_H
