// Shared helpers for the figure-reproduction benches.
//
// Every bench prints:
//   * a CSV block with the series the paper plots (machine-readable),
//   * a human-readable summary table,
//   * "CHECK" lines asserting the paper's qualitative shape, so the bench
//     output doubles as a reproduction report.
#ifndef SSPLANE_BENCH_BENCH_UTIL_H
#define SSPLANE_BENCH_BENCH_UTIL_H

#include <chrono>
#include <iostream>
#include <string>

#include "demand/demand_model.h"
#include "demand/population.h"

namespace ssplane::bench {

/// Shared full-resolution population model (built once per process).
inline const demand::population_model& population()
{
    static const demand::population_model model;
    return model;
}

/// Shared paper-resolution demand model (0.5 deg x 15 min).
inline const demand::demand_model& paper_demand()
{
    static const demand::demand_model model(population());
    return model;
}

/// Print a PASS/FAIL shape-check line; returns `ok` for aggregation.
inline bool check(const std::string& name, bool ok)
{
    std::cout << "CHECK " << (ok ? "PASS" : "FAIL") << ": " << name << "\n";
    return ok;
}

/// Wall-clock stopwatch for bench timing lines.
class stopwatch {
public:
    stopwatch() : start_(std::chrono::steady_clock::now()) {}
    double seconds() const
    {
        return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
            .count();
    }

private:
    std::chrono::steady_clock::time_point start_;
};

} // namespace ssplane::bench

#endif // SSPLANE_BENCH_BENCH_UTIL_H
