// Ablation A3: networking over an SS design (paper §5) — routing latency
// between city pairs and per-station coverage fractions, compared against a
// uniform Walker shell of similar size.
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "core/greedy_cover.h"
#include "lsn/simulator.h"
#include "util/angles.h"
#include "util/csv.h"

using namespace ssplane;

int main()
{
    bench::stopwatch timer;
    std::cout << "# Ablation: routing/coverage over SS vs Walker topologies\n\n";

    // SS design for a modest demand target.
    const auto problem = core::make_design_problem(bench::paper_demand(), 10.0);
    const auto design = core::greedy_ss_cover(problem);
    std::vector<constellation::ss_plane> planes;
    planes.reserve(design.planes.size());
    for (const auto& p : design.planes)
        planes.push_back({p.altitude_m, p.ltan_h, p.n_sats, 0.0});
    const auto epoch = astro::instant::from_calendar(2015, 6, 1, 0);
    const auto ss_topology = lsn::build_ss_topology(planes, epoch);

    // Walker comparator of similar satellite count.
    constellation::walker_parameters wp;
    wp.altitude_m = 560.0e3;
    wp.inclination_rad = deg2rad(65.0);
    wp.sats_per_plane = design.sats_per_plane;
    wp.n_planes = std::max<int>(3, static_cast<int>(design.planes.size()));
    wp.phasing_f = 1;
    const auto wd_topology = lsn::build_walker_grid_topology(wp);

    lsn::simulation_options sim;
    sim.duration_s = 6.0 * 3600.0;
    sim.step_s = 1200.0;

    const auto stations = lsn::default_ground_stations();
    struct pair_case {
        int a;
        int b;
        const char* name;
    };
    const pair_case pairs[] = {
        {0, 3, "NewYork-London"}, {7, 9, "Delhi-Tokyo"}, {2, 5, "SaoPaulo-Johannesburg"},
        {0, 10, "NewYork-Sydney"}};

    csv_writer csv(std::cout, {"topology", "pair", "reachable_fraction",
                               "mean_latency_ms", "p95_latency_ms", "mean_hops"});
    double ss_reach_sum = 0.0;
    for (const auto& p : pairs) {
        const auto ss_stats =
            lsn::simulate_pair_latency(ss_topology, stations, p.a, p.b, epoch, sim);
        const auto wd_stats =
            lsn::simulate_pair_latency(wd_topology, stations, p.a, p.b, epoch, sim);
        csv.row_text({"ss", p.name, format_number(ss_stats.reachable_fraction, 4),
                      format_number(ss_stats.mean_latency_ms, 5),
                      format_number(ss_stats.p95_latency_ms, 5),
                      format_number(ss_stats.mean_hops, 4)});
        csv.row_text({"walker", p.name, format_number(wd_stats.reachable_fraction, 4),
                      format_number(wd_stats.mean_latency_ms, 5),
                      format_number(wd_stats.p95_latency_ms, 5),
                      format_number(wd_stats.mean_hops, 4)});
        ss_reach_sum += ss_stats.reachable_fraction;
    }

    // Coverage fractions per station under the SS design (the predictable
    // coverage variation the paper's research agenda highlights).
    std::cout << "\n";
    csv_writer cov_csv(std::cout, {"station", "ss_coverage_fraction"});
    double equatorial_cov = 0.0;
    double high_lat_cov = 0.0;
    for (const auto& gs : stations) {
        const double frac = lsn::coverage_fraction(ss_topology, gs, epoch, sim);
        cov_csv.row_text({gs.name, format_number(frac, 4)});
        if (gs.name == "Singapore") equatorial_cov = frac;
        if (gs.name == "Anchorage") high_lat_cov = frac;
    }
    std::cout << "\n";

    bench::check("SS topology routes most city pairs most of the time",
                 ss_reach_sum / 4.0 > 0.7);
    bench::check("SS coverage exists at both equatorial and high-latitude stations",
                 equatorial_cov > 0.3 && high_lat_cov > 0.3);

    std::cout << "elapsed_s=" << timer.seconds() << "\n";
    return 0;
}
