// Paper Figure 6: maximum electron flux at 560 km over a sample of 128 days
// from solar cycle 24 (IRENE-substitute belt model).
#include <algorithm>
#include <iostream>

#include "bench_util.h"
#include "radiation/fluence.h"
#include "util/csv.h"

using namespace ssplane;

int main()
{
    bench::stopwatch timer;
    std::cout << "# Figure 6: max electron flux at 560 km, 128 days of cycle 24\n\n";

    const radiation::radiation_environment env;
    const auto map = radiation::max_electron_flux_map(env, 560.0e3, 2.0, 128, 2024);

    // Emit at 4-degree resolution to keep the output compact.
    csv_writer csv(std::cout, {"latitude_deg", "longitude_deg", "electron_flux_cm2_s_mev"});
    for (std::size_t r = 0; r < map.n_lat(); r += 2) {
        for (std::size_t c = 0; c < map.n_lon(); c += 2) {
            csv.row({map.latitude_center_deg(r), map.longitude_center_deg(c),
                     map.field()(r, c)});
        }
    }

    // Structural probes.
    const auto at = [&](double lat, double lon) {
        return map.field()(map.row_of_latitude(lat), map.col_of_longitude(lon));
    };
    const double saa = at(-28.0, -45.0);
    const double north_band = at(62.0, 60.0);
    // The tilted dipole shifts the southern band's geographic latitude with
    // longitude; scan the -50..-75 band for its maximum.
    double south_band = 0.0;
    for (double lat = -75.0; lat <= -50.0; lat += 2.0)
        for (double lon = -180.0; lon < 180.0; lon += 4.0)
            south_band = std::max(south_band, at(lat, lon));
    const double trough = at(18.0, 60.0);
    const double pacific_low = at(-20.0, -170.0);

    std::cout << "\nsaa_flux=" << saa << "\nnorth_band_flux=" << north_band
              << "\nsouth_band_flux=" << south_band << "\ntrough_flux=" << trough
              << "\npacific_low_flux=" << pacific_low << "\n\n";

    // Paper Fig. 6 structures: SAA over South America/South Atlantic plus
    // outer-belt bands at moderate-to-high latitudes in both hemispheres.
    bench::check("SAA is a hotspot over the South Atlantic", saa > 4.0 * trough);
    bench::check("northern outer-belt band present", north_band > 2.0 * trough);
    bench::check("southern outer-belt band present", south_band > 2.0 * trough);
    bench::check("low-latitude Pacific is quiet", pacific_low < saa / 4.0);

    std::cout << "elapsed_s=" << timer.seconds() << "\n";
    return 0;
}
