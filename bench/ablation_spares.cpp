// Ablation A2: survivability — in-orbit spares needed per plane to hold an
// availability target under radiation-driven failures, for the WD
// inclination mix vs the sun-synchronous design (paper §2.1, §5(2)).
#include <iostream>

#include "bench_util.h"
#include "lsn/failures.h"
#include "radiation/fluence.h"
#include "util/angles.h"
#include "util/csv.h"

using namespace ssplane;

int main()
{
    bench::stopwatch timer;
    std::cout << "# Ablation: spares per plane vs orbit radiation environment\n\n";

    const radiation::radiation_environment env;
    const auto day = astro::instant::from_calendar(2014, 3, 15);
    lsn::failure_model_options opts; // 5-year mission

    struct orbit_case {
        const char* name;
        double inclination_deg;
    };
    const orbit_case cases[] = {
        {"wd_30deg", 30.0}, {"wd_53deg", 53.0}, {"wd_65deg", 65.0}, {"ss_97.6deg", 97.604}};

    csv_writer csv(std::cout,
                   {"orbit", "electron_fluence_per_day", "annual_failure_rate",
                    "spares_for_99.5", "spares_for_99.9", "expected_failures_5yr"});

    int ss_spares = -1;
    int wd65_spares = -1;
    double ss_rate = 0.0;
    double wd65_rate = 0.0;
    for (const auto& c : cases) {
        const auto fluence =
            radiation::daily_fluence(env, 560.0e3, deg2rad(c.inclination_deg), day, 0.0,
                                     30.0);
        const double rate = lsn::annual_failure_rate(fluence.electrons_cm2_mev, opts);
        const auto s995 = lsn::spares_for_availability(25, rate, 0.995, opts, 7, 256);
        const auto s999 = lsn::spares_for_availability(25, rate, 0.999, opts, 7, 256);
        csv.row_text({c.name, format_number(fluence.electrons_cm2_mev, 4),
                      format_number(rate, 4), format_number(s995.spares),
                      format_number(s999.spares),
                      format_number(s999.expected_failures_per_plane, 4)});
        if (c.inclination_deg > 90.0) {
            ss_spares = s999.spares;
            ss_rate = rate;
        }
        if (c.inclination_deg == 65.0) {
            wd65_spares = s999.spares;
            wd65_rate = rate;
        }
    }
    std::cout << "\n";

    bench::check("SS orbit fails less often than the 65-deg WD orbit",
                 ss_rate < wd65_rate);
    bench::check("SS needs no more spares than the 65-deg WD plane",
                 ss_spares <= wd65_spares);
    bench::check("spare counts in the paper's 2-10 per-plane range",
                 ss_spares >= 0 && wd65_spares <= 10);

    std::cout << "elapsed_s=" << timer.seconds() << "\n";
    return 0;
}
