// Paper Figure 9: satellites required to satisfy the spatiotemporal demand
// grid vs bandwidth multiplier — SS-plane greedy vs multi-shell
// Walker-delta (strict one-capacity-per-shell reading, plus the generous
// overlap-credit variant; see DESIGN.md/EXPERIMENTS.md).
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "core/evaluator.h"
#include "util/csv.h"
#include "util/table.h"

using namespace ssplane;

int main()
{
    bench::stopwatch timer;
    std::cout << "# Figure 9: satellite count vs bandwidth multiplier (560 km)\n\n";

    const auto& model = bench::paper_demand();
    core::walker_baseline_designer wd_strict; // default options
    core::wd_baseline_options credit_opts;
    credit_opts.credit_overlap_capacity = true;
    core::walker_baseline_designer wd_credit(credit_opts);

    const std::vector<double> multipliers{10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0};
    csv_writer csv(std::cout, {"bandwidth_multiplier", "ss_satellites", "ss_planes",
                               "wd_satellites", "wd_shells", "wd_credit_satellites",
                               "ratio_wd_over_ss", "ratio_credit_over_ss"});

    double first_ratio = 0.0;
    double last_ratio = 0.0;
    double first_credit_ratio = 0.0;
    double last_credit_ratio = 0.0;
    bool ss_always_below = true;

    for (double b : multipliers) {
        const auto problem = core::make_design_problem(model, b);
        const auto ss = core::greedy_ss_cover(problem);
        const auto wd = wd_strict.design(problem);
        const auto wdc = wd_credit.design(problem);
        const double ratio = static_cast<double>(wd.total_satellites) /
                             std::max(1, ss.total_satellites);
        const double credit_ratio = static_cast<double>(wdc.total_satellites) /
                                    std::max(1, ss.total_satellites);
        csv.row({b, static_cast<double>(ss.total_satellites),
                 static_cast<double>(ss.planes.size()),
                 static_cast<double>(wd.total_satellites),
                 static_cast<double>(wd.shells.size()),
                 static_cast<double>(wdc.total_satellites), ratio, credit_ratio});
        if (first_ratio == 0.0) first_ratio = ratio;
        last_ratio = ratio;
        if (first_credit_ratio == 0.0) first_credit_ratio = credit_ratio;
        last_credit_ratio = credit_ratio;
        ss_always_below &= (ss.total_satellites < wd.total_satellites);
        std::cerr << "  B=" << b << " done (" << timer.seconds() << " s)\n";
    }

    std::cout << "\n";
    table_printer summary({"quantity", "paper", "measured"});
    summary.row({"SS below WD at all multipliers", "yes", ss_always_below ? "yes" : "no"});
    summary.row({"WD/SS ratio at B=10", "up to ~10x", format_number(first_ratio, 3)});
    summary.row({"WD/SS ratio at B=1000", "gap narrows", format_number(last_ratio, 3)});
    summary.row({"WD(credit)/SS at B=10", "-", format_number(first_credit_ratio, 3)});
    summary.row({"WD(credit)/SS at B=1000", "-", format_number(last_credit_ratio, 3)});
    summary.print(std::cout);
    std::cout << "\n";

    bench::check("SS always needs fewer satellites than WD (paper Fig. 9)",
                 ss_always_below);
    bench::check("SS advantage is large at low multipliers (>=1.3x)",
                 first_ratio >= 1.3);
    bench::check("overlap-credit WD variant is cheaper than strict WD",
                 last_credit_ratio <= last_ratio);
    bench::check("credit variant narrows the WD/SS gap (paper's convergence story)",
                 last_credit_ratio < first_ratio);

    std::cout << "elapsed_s=" << timer.seconds() << "\n";
    return 0;
}
