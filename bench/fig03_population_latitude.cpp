// Paper Figure 3: maximum population density over all longitudes per
// 0.5-degree latitude band (SEDAC-substitute gazetteer model).
#include <algorithm>
#include <iostream>

#include "bench_util.h"
#include "util/csv.h"

using namespace ssplane;

int main()
{
    bench::stopwatch timer;
    const auto& pop = bench::population();

    std::cout << "# Figure 3: max population density by latitude (0.5 deg bins)\n\n";
    csv_writer csv(std::cout, {"latitude_deg", "max_density_per_km2"});
    const auto& profile = pop.max_density_by_latitude();
    const auto lats = pop.latitude_centers_deg();
    for (std::size_t r = 0; r < profile.size(); ++r) csv.row({lats[r], profile[r]});

    const auto it = std::max_element(profile.begin(), profile.end());
    const double peak_lat = lats[static_cast<std::size_t>(it - profile.begin())];

    std::cout << "\npeak_density_per_km2=" << *it << "\npeak_latitude_deg=" << peak_lat
              << "\ntotal_population_billions=" << pop.total_population() / 1e9 << "\n\n";

    // Paper Fig. 3 shape: peak ~6000 /km^2 near 24 N; poles empty;
    // clustering at intermediate latitudes.
    bench::check("peak density ~6000/km^2 (paper axis: 0..6000)",
                 *it > 4500.0 && *it < 8500.0);
    bench::check("peak latitude in the South-Asia band (paper: ~24 N)",
                 peak_lat > 18.0 && peak_lat < 32.0);
    bench::check("poles are empty", profile.front() < 1.0 && profile.back() < 1.0);
    bench::check("global total ~8 B people",
                 pop.total_population() > 7.0e9 && pop.total_population() < 9.0e9);

    std::cout << "elapsed_s=" << timer.seconds() << "\n";
    return 0;
}
