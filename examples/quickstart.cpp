// Quickstart: the SS-plane primitive in a dozen lines.
//
// Builds one sun-synchronous plane, shows that its (latitude, local time)
// trace is fixed across seasons, then runs the paper's greedy design for a
// small demand target and prints the resulting constellation.
#include <iostream>

#include "constellation/sun_sync.h"
#include "core/evaluator.h"
#include "demand/demand_model.h"
#include "demand/population.h"
#include "util/csv.h"
#include "util/table.h"

using namespace ssplane;

int main()
{
    std::cout << "=== ssplane quickstart ===\n\n";

    // 1. A sun-synchronous plane at 560 km with ascending node at 13:30.
    const double altitude_m = 560.0e3;
    const auto inclination = constellation::sun_synchronous_inclination_rad(altitude_m);
    std::cout << "sun-synchronous inclination at 560 km: " << rad2deg(*inclination)
              << " deg\n";

    constellation::ss_plane plane{altitude_m, 13.5, 25, 0.0};
    const auto epoch = astro::instant::from_calendar(2026, 1, 1);
    const auto sats = constellation::make_ss_plane(plane, epoch);
    std::cout << "one SS-plane carries " << sats.size()
              << " satellites for a closed coverage street\n";

    // The defining property: the node's local solar time never drifts.
    const astro::j2_propagator orbit(sats[0].elements, epoch);
    std::cout << "local time of ascending node over one year:\n";
    for (double days : {0.0, 120.0, 240.0, 365.0}) {
        const astro::instant t = epoch.plus_days(days);
        const double ltan =
            constellation::ltan_of_raan_h(orbit.elements_at(t).raan_rad, t);
        std::cout << "  day " << days << ": LTAN = " << ltan << " h\n";
    }

    // 2. Design a small SS constellation against the world demand model.
    std::cout << "\ndesigning for bandwidth multiplier 5 "
              << "(peak demand = 5 satellite capacities)...\n";
    const demand::population_model population;
    const demand::demand_model demand(population);
    const auto problem = core::make_design_problem(demand, 5.0, altitude_m);
    const auto design = core::greedy_ss_cover(problem);

    core::walker_baseline_designer wd_designer;
    const auto baseline = wd_designer.design(problem);

    table_printer summary({"design", "planes/shells", "satellites"});
    summary.row({"SS-plane greedy", format_number(design.planes.size()),
                 format_number(design.total_satellites)});
    summary.row({"Walker-delta baseline", format_number(baseline.shells.size()),
                 format_number(baseline.total_satellites)});
    summary.print(std::cout);

    std::cout << "\nSS saves "
              << baseline.total_satellites - design.total_satellites
              << " satellites at this demand level.\n";
    return 0;
}
