// A day in the life of an SS-plane network: design a constellation, wire
// its ISLs, and follow routing latency and coverage through 24 hours
// (paper §5: time-aware topology/routing evaluation).
//
// Usage: network_day [--bandwidth=10] [--pairs=4]
#include <iostream>

#include "core/greedy_cover.h"
#include "lsn/simulator.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/table.h"

using namespace ssplane;

int main(int argc, char** argv)
{
    const cli_args args(argc, argv);
    const double bandwidth = args.get_double("bandwidth", 10.0);

    std::cout << "=== SS network, 24-hour simulation ===\n";

    // Design the constellation.
    const demand::population_model population;
    const demand::demand_model demand(population);
    const auto problem = core::make_design_problem(demand, bandwidth);
    const auto design = core::greedy_ss_cover(problem);
    std::cout << "designed " << design.planes.size() << " SS-planes, "
              << design.total_satellites << " satellites\n\n";

    std::vector<constellation::ss_plane> planes;
    planes.reserve(design.planes.size());
    for (const auto& p : design.planes)
        planes.push_back({p.altitude_m, p.ltan_h, p.n_sats, 0.0});
    const auto epoch = astro::instant::from_calendar(2026, 6, 1, 0);
    const auto topology = lsn::build_ss_topology(planes, epoch);
    std::cout << "topology: " << topology.satellites.size() << " nodes, "
              << topology.links.size() << " inter-satellite links\n\n";

    lsn::simulation_options sim;
    sim.duration_s = 86400.0;
    sim.step_s = 1800.0;

    const auto stations = lsn::default_ground_stations();
    const std::pair<int, int> pairs[] = {{0, 3}, {7, 9}, {2, 5}, {0, 10}};

    table_printer table({"pair", "reach_frac", "mean_ms", "p95_ms", "hops"});
    for (const auto& [a, b] : pairs) {
        const auto stats =
            lsn::simulate_pair_latency(topology, stations, a, b, epoch, sim);
        table.row({stations[static_cast<std::size_t>(a)].name + "-" +
                       stations[static_cast<std::size_t>(b)].name,
                   format_number(stats.reachable_fraction, 4),
                   format_number(stats.mean_latency_ms, 5),
                   format_number(stats.p95_latency_ms, 5),
                   format_number(stats.mean_hops, 4)});
    }
    table.print(std::cout);

    std::cout << "\nper-station coverage over the day:\n";
    table_printer cov({"station", "coverage_fraction"});
    for (const auto& gs : stations) {
        cov.row({gs.name,
                 format_number(lsn::coverage_fraction(topology, gs, epoch, sim), 4)});
    }
    cov.print(std::cout);
    return 0;
}
