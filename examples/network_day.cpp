// A day in the life of an SS-plane network: design a constellation, wire
// its ISLs, follow routing latency and coverage through 24 hours, then
// stress the network with failure scenarios — random loss, whole-plane
// attack, and radiation-driven Poisson failures fed by each plane's daily
// fluence (paper §2.1 survivability, §5 time-aware evaluation).
//
// The failure study runs as ONE experiment campaign (`exp::run_campaign`):
// an `evaluation_context` pays the propagation pass and failure draws once,
// and the survivability / delivered-traffic / bulk-delivery engines judge
// every scenario against it. The campaign table is printed per engine and
// emitted as a CSV block at the end.
//
// Usage: network_day [--bandwidth=10] [--sweep-step=1800] [--seed=1]
//                    [--offered-gbps=2000] [--bulk-gb=500000]
//                    [--buffer-gb=25000] [--bulk-deadline-h=6]
//                    [--sessions=1000000]
//                    [--trace=out.json] [--metrics[=out.csv]]
//
// --trace=FILE records phase spans across the whole run and writes a Chrome
// trace-event JSON (load it at ui.perfetto.dev) plus a per-phase wall/self
// summary on stdout. --metrics dumps the counter registry as CSV, to FILE
// when given a value, else to stdout.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "constellation/sun_sync.h"
#include "core/greedy_cover.h"
#include "exp/campaign.h"
#include "lsn/scenario.h"
#include "lsn/simulator.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "radiation/fluence.h"
#include "radiation/solar_cycle.h"
#include "spectral/percolation.h"
#include "traffic/traffic_sweep.h"
#include "util/angles.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/table.h"

using namespace ssplane;

int main(int argc, char** argv)
{
    const cli_args args(argc, argv);
    const double bandwidth = args.get_double("bandwidth", 10.0);
    const std::string trace_path = args.get("trace", "");
    if (!trace_path.empty()) {
        obs::trace_reset();
        obs::set_tracing_enabled(true);
    }

    std::cout << "=== SS network, 24-hour simulation ===\n";

    // Design the constellation.
    const demand::population_model population;
    const demand::demand_model demand(population);
    const auto problem = core::make_design_problem(demand, bandwidth);
    const auto design = core::greedy_ss_cover(problem);
    std::cout << "designed " << design.planes.size() << " SS-planes, "
              << design.total_satellites << " satellites\n\n";

    std::vector<constellation::ss_plane> planes;
    planes.reserve(design.planes.size());
    for (const auto& p : design.planes)
        planes.push_back({p.altitude_m, p.ltan_h, p.n_sats, 0.0});
    const auto epoch = astro::instant::from_calendar(2026, 6, 1, 0);
    const auto topology = lsn::build_ss_topology(planes, epoch);
    std::cout << "topology: " << topology.satellites.size() << " nodes, "
              << topology.links.size() << " inter-satellite links\n\n";

    lsn::simulation_options sim;
    sim.duration_s = 86400.0;
    sim.step_s = 1800.0;

    // Gateways: the twelve most populous gazetteer metros (well separated),
    // instead of the hard-coded default dozen.
    const auto stations = traffic::stations_from_cities(12);
    const std::pair<int, int> pairs[] = {{0, 3}, {7, 9}, {2, 5}, {0, 10}};

    table_printer table({"pair", "reach_frac", "mean_ms", "p95_ms", "hops"});
    for (const auto& [a, b] : pairs) {
        const auto stats =
            lsn::simulate_pair_latency(topology, stations, a, b, epoch, sim);
        table.row({stations[static_cast<std::size_t>(a)].name + "-" +
                       stations[static_cast<std::size_t>(b)].name,
                   format_number(stats.reachable_fraction, 4),
                   format_number(stats.mean_latency_ms, 5),
                   format_number(stats.p95_latency_ms, 5),
                   format_number(stats.mean_hops, 4)});
    }
    table.print(std::cout);

    std::cout << "\nper-station coverage over the day:\n";
    table_printer cov({"station", "coverage_fraction"});
    for (const auto& gs : stations) {
        cov.row({gs.name,
                 format_number(lsn::coverage_fraction(topology, gs, epoch, sim), 4)});
    }
    cov.print(std::cout);

    // --- Failure-scenario sweep: how does the same day look as satellites
    // fail? Giant-component fraction tracks topological fragmentation; the
    // all-pairs reachability and p95 inflation track user-visible service.
    const auto seed = static_cast<std::uint64_t>(args.get_double("seed", 1.0));
    lsn::scenario_sweep_options sweep;
    sweep.duration_s = 86400.0;
    sweep.step_s = args.get_double("sweep-step", 1800.0);

    // Per-plane daily electron fluence drives the radiation scenario: each
    // designed plane flies at its own altitude, so doses differ per plane.
    const radiation::radiation_environment env;
    std::vector<double> plane_fluence;
    plane_fluence.reserve(planes.size());
    for (const auto& p : planes) {
        const double incl = constellation::sun_synchronous_inclination_rad(p.altitude_m)
                                .value_or(deg2rad(97.5));
        plane_fluence.push_back(
            radiation::daily_fluence(env, p.altitude_m, incl, epoch, 0.0, 60.0)
                .electrons_cm2_mev);
    }

    exp::experiment_plan plan;
    plan.scenarios.push_back({"baseline", {}});
    {
        lsn::failure_scenario s;
        s.mode = lsn::failure_mode::random_loss;
        s.loss_fraction = 0.1;
        s.seed = seed;
        plan.scenarios.push_back({"random 10%", s});
        s.loss_fraction = 0.3;
        plan.scenarios.push_back({"random 30%", s});
    }
    {
        lsn::failure_scenario s;
        s.mode = lsn::failure_mode::plane_attack;
        s.planes_attacked = std::min<int>(2, static_cast<int>(planes.size()));
        s.seed = seed;
        plan.scenarios.push_back(
            {"plane attack x" + std::to_string(s.planes_attacked), s});
    }
    {
        lsn::failure_scenario s;
        s.mode = lsn::failure_mode::radiation_poisson;
        s.plane_daily_fluence = plane_fluence;
        s.horizon_days = 5.0 * 365.25; // mission-length exposure
        s.seed = seed;
        plan.scenarios.push_back({"radiation 5y", s});
    }

    // --- Time-correlated scenarios: failures that unfold DURING the day
    // instead of before it. Kessler debris compounds plane by plane, the
    // solar storm is a mid-day fluence spike, and the greedy adversary
    // strikes whichever planes carry the most delivered traffic.
    lsn::failure_scenario cascade;
    cascade.mode = lsn::failure_mode::kessler_cascade;
    cascade.cascade_initial_hits = 2;
    cascade.cascade_base_daily_hazard = args.get_double("cascade-hazard", 0.3);
    cascade.cascade_escalation = args.get_double("cascade-escalation", 0.05);
    cascade.cascade_cooldown_s = 6.0 * 3600.0;
    cascade.seed = seed;
    plan.scenarios.push_back({"kessler cascade", cascade});
    {
        lsn::failure_scenario s;
        s.mode = lsn::failure_mode::solar_storm;
        s.plane_daily_fluence = plane_fluence;
        s.storm_start_s = 6.0 * 3600.0;
        s.storm_duration_s = 6.0 * 3600.0;
        // The 2026 epoch sits past the modeled cycle-24 envelope, where the
        // deterministic activity level is nearly zero — normalize it out so
        // the template injects a cycle-max-equivalent fluence spike.
        const double activity = std::max(
            radiation::solar_activity(epoch.plus_seconds(9.0 * 3600.0)), 1.0e-9);
        s.storm_fluence_multiplier =
            1.0 + args.get_double("storm-boost", 4000.0) / activity;
        s.seed = seed;
        plan.scenarios.push_back({"solar storm", s});
    }
    {
        lsn::failure_scenario s;
        s.mode = lsn::failure_mode::greedy_adversary;
        s.adversary_budget = std::min<int>(2, static_cast<int>(planes.size()));
        s.adversary_strike_interval_steps = 4;
        s.adversary_eval_stride = 4; // subsample the oracle's grid 4:1
        plan.scenarios.push_back({"greedy adversary", s});
    }

    // --- The three workloads as campaign engines. Survivability, delivered
    // throughput against the diurnal gravity matrix, and delay-tolerant bulk
    // delivery (time-expanded store-and-forward vs the per-epoch replication
    // floor) all judge the same scenarios on one shared context.
    traffic::traffic_sweep_options traffic_opts;
    traffic_opts.matrix.total_demand_gbps =
        args.get_double("offered-gbps", 2000.0);

    tempo::bulk_route_options bulk_opts;
    bulk_opts.sat_buffer_gb = args.get_double("buffer-gb", 25000.0);
    const double bulk_gb = args.get_double("bulk-gb", 500000.0);
    const double bulk_deadline_s =
        std::min(args.get_double("bulk-deadline-h", 6.0) * 3600.0, sweep.duration_s);
    const int n_gw = static_cast<int>(stations.size());
    std::vector<tempo::bulk_transfer_request> bulk_requests;
    for (int g = 0; g < n_gw; ++g)
        bulk_requests.push_back(
            {g, (g + n_gw / 2) % n_gw, bulk_gb, 0.0, bulk_deadline_s});

    // The percolation engine's masking thresholds are reported in their own
    // escalation table below, so skip the duplicate per-topology sweep here.
    exp::percolation_engine_options perc_opts;
    perc_opts.compute_masking_thresholds = false;

    // Session-level serving: N user terminals sampled from the population
    // grid (cell aggregates, so memory stays O(populated cells) even at
    // millions of sessions), judged per step against beam/satellite limits.
    serve::serving_options serving_opts;
    serving_opts.n_sessions =
        static_cast<std::int64_t>(args.get_double("sessions", 1000000.0));
    serving_opts.seed = seed;

    plan.engines = {
        std::make_shared<exp::survivability_engine>(),
        std::make_shared<exp::traffic_engine>(demand, traffic_opts),
        std::make_shared<exp::bulk_engine>(bulk_requests, bulk_opts),
        std::make_shared<exp::bulk_engine>(bulk_requests, bulk_opts,
                                           /*per_step_baseline=*/true),
        std::make_shared<exp::percolation_engine>(perc_opts),
        std::make_shared<exp::serving_engine>(population, serving_opts)};

    // One context = one propagation pass + one failure draw per scenario,
    // shared by all (scenario, engine) cells. The greedy adversary needs a
    // delivered-traffic oracle to rank its targets — arm it with the same
    // demand model and capacities the traffic engine judges against.
    exp::evaluation_context context(topology, stations, epoch, sweep);
    context.set_adversary_oracle(demand, traffic_opts);
    const auto campaign = exp::run_campaign(plan, context);
    const int n_rows = static_cast<int>(campaign.rows.size());
    // Address engines by name, not by position in plan.engines — the two
    // bulk variants share a detail type, so a positional mix-up would not
    // be caught by the detail() type check.
    const int surv_e = campaign.engine_index("survivability");
    const int traffic_e = campaign.engine_index("traffic");
    const int bulk_e = campaign.engine_index("bulk");
    const int bulk_floor_e = campaign.engine_index("bulk_per_step");

    std::cout << "\nfailure-scenario sweep (" << sweep.duration_s / 3600.0 << " h, step "
              << sweep.step_s << " s):\n";
    table_printer st({"scenario", "failed", "giant_frac", "reach_frac", "mean_ms",
                      "p95_ms", "p95_inflation"});
    const auto& surv_baseline = exp::survivability_engine::detail(campaign.cell(0, surv_e));
    for (int r = 0; r < n_rows; ++r) {
        const auto& result = exp::survivability_engine::detail(campaign.cell(r, surv_e));
        st.row({campaign.rows[static_cast<std::size_t>(r)].name,
                std::to_string(campaign.rows[static_cast<std::size_t>(r)].n_failed),
                format_number(result.metrics.giant_component_fraction, 4),
                format_number(result.metrics.pair_reachable_fraction, 4),
                format_number(result.metrics.mean_latency_ms, 5),
                format_number(result.metrics.p95_latency_ms, 5),
                format_number(lsn::p95_latency_inflation(surv_baseline, result), 4)});
    }
    st.print(std::cout);

    std::cout << "\ndelivered throughput under failure ("
              << traffic_opts.matrix.total_demand_gbps << " Gbps offered, ISL "
              << traffic_opts.capacity.isl_capacity_gbps << " Gbps, uplink "
              << traffic_opts.capacity.uplink_capacity_gbps << " Gbps):\n";
    table_printer tt({"scenario", "offered_gbps", "delivered_frac", "p95_util",
                      "congested_frac", "vs_baseline"});
    const auto& traffic_baseline = exp::traffic_engine::detail(campaign.cell(0, traffic_e));
    for (int r = 0; r < n_rows; ++r) {
        const auto& result = exp::traffic_engine::detail(campaign.cell(r, traffic_e));
        tt.row({campaign.rows[static_cast<std::size_t>(r)].name,
                format_number(result.metrics.offered_gbps_mean, 5),
                format_number(result.metrics.delivered_fraction, 4),
                format_number(result.metrics.p95_link_utilization, 4),
                format_number(result.metrics.congested_link_fraction, 4),
                format_number(
                    traffic::delivered_throughput_ratio(traffic_baseline, result), 4)});
    }
    tt.print(std::cout);

    std::cout << "\nbulk delivery under failure (" << bulk_gb
              << " Gb per request, " << bulk_requests.size()
              << " requests, buffer " << bulk_opts.sat_buffer_gb
              << " Gb/sat, deadline " << bulk_deadline_s / 3600.0 << " h):\n";
    table_printer bt({"scenario", "delivered_frac", "per_step_frac", "sf_gain",
                      "max_buffer_gb", "vs_baseline"});
    const auto& bulk_baseline = exp::bulk_engine::detail(campaign.cell(0, bulk_e));
    for (int r = 0; r < n_rows; ++r) {
        const auto& expanded = exp::bulk_engine::detail(campaign.cell(r, bulk_e));
        const auto& replicated = exp::bulk_engine::detail(campaign.cell(r, bulk_floor_e));
        // Store-and-forward gain; "inf" when buffering delivers volume the
        // per-step greedy cannot move at all.
        const double gain =
            replicated.routing.delivered_gb > 0.0
                ? expanded.routing.delivered_gb / replicated.routing.delivered_gb
                : (expanded.routing.delivered_gb > 0.0
                       ? std::numeric_limits<double>::infinity()
                       : 1.0);
        bt.row({campaign.rows[static_cast<std::size_t>(r)].name,
                format_number(expanded.routing.delivered_fraction, 4),
                format_number(replicated.routing.delivered_fraction, 4),
                format_number(gain, 4),
                format_number(expanded.routing.max_buffer_gb, 5),
                format_number(
                    tempo::delivered_volume_ratio(bulk_baseline, expanded), 4)});
    }
    bt.print(std::cout);

    // --- User-level SLOs: the same scenarios seen by individual sessions
    // instead of gateway aggregates. served_frac counts sessions at full
    // SLO; p99 is the floor rate 99% of session-steps meet or exceed;
    // restore_s is how long the served fraction stayed below the restore
    // threshold after first dipping (-1 = never dipped, inf = never
    // recovered within the day).
    const int serving_e = campaign.engine_index("serving");
    const auto& serving_grid =
        std::dynamic_pointer_cast<const exp::serving_engine>(
            campaign.engines[static_cast<std::size_t>(serving_e)])
            ->grid();
    std::cout << "\nuser-level SLOs (" << serving_grid.total_sessions
              << " sessions over " << serving_grid.cells.size()
              << " populated cells, " << serving_opts.session_rate_mbps
              << " Mbps/session):\n";
    table_printer ut({"scenario", "served_frac", "p50_mbps", "p99_mbps",
                      "dropped_max", "degraded_max", "restore_s"});
    for (int r = 0; r < n_rows; ++r) {
        ut.row({campaign.rows[static_cast<std::size_t>(r)].name,
                format_number(campaign.value(r, "serving.served_fraction_mean"), 4),
                format_number(campaign.value(r, "serving.p50_session_rate_mbps"), 4),
                format_number(campaign.value(r, "serving.p99_session_rate_mbps"), 4),
                format_number(campaign.value(r, "serving.sessions_dropped_max")),
                format_number(campaign.value(r, "serving.sessions_degraded_max")),
                format_number(campaign.value(r, "serving.time_to_restore_s"), 1)});
    }
    ut.print(std::cout);

    // --- Structural robustness: the spectral/percolation view of the same
    // scenarios. λ₂ (algebraic connectivity of the alive subgraph) tracks
    // how well-knit the survivors stay, the giant-component fraction tracks
    // raw fragmentation, and susceptibility χ spikes near the percolation
    // transition — together they say HOW a scenario erodes the network, not
    // just how much service it costs.
    std::cout << "\nstructural robustness under failure (day means; chi = "
                 "finite-cluster susceptibility):\n";
    table_printer pt({"scenario", "lambda2_mean", "lambda2_min", "giant_frac",
                      "chi_max", "clustering"});
    for (int r = 0; r < n_rows; ++r) {
        pt.row({campaign.rows[static_cast<std::size_t>(r)].name,
                format_number(campaign.value(r, "percolation.lambda2_mean"), 4),
                format_number(campaign.value(r, "percolation.lambda2_min"), 4),
                format_number(
                    campaign.value(r, "percolation.giant_fraction_mean"), 4),
                format_number(
                    campaign.value(r, "percolation.susceptibility_max"), 4),
                format_number(campaign.value(r, "percolation.clustering_mean"), 4)});
    }
    pt.print(std::cout);

    // --- Masking threshold: escalate a targeted plane attack on the static
    // ISL wiring until fragmentation dominates (alive-giant fraction below
    // the collapse ratio, or λ₂ at zero). Fractions at or past the
    // threshold are damage the constellation can no longer mask.
    spectral::masking_threshold_options mask_opts;
    mask_opts.mode = lsn::failure_mode::plane_attack;
    mask_opts.seed = seed;
    mask_opts.stop_at_collapse = false; // full degradation curve
    const auto mask_curve = spectral::find_masking_threshold(topology, mask_opts);
    std::cout << "\nescalating plane attack on the static wiring ("
              << mask_opts.n_seeds << " draws per step, collapse ratio "
              << format_number(mask_opts.gcc_collapse_ratio, 2) << "):\n";
    table_printer mt({"attack_frac", "lambda2", "giant_alive_frac", "chi",
                      "clustering", "masked"});
    for (const auto& step : mask_curve.steps) {
        const bool masked = mask_curve.threshold_fraction < 0.0 ||
                            step.fraction < mask_curve.threshold_fraction;
        mt.row({format_number(step.fraction, 3),
                format_number(step.mean_lambda2, 4),
                format_number(step.mean_giant_alive_fraction, 4),
                format_number(step.mean_susceptibility, 4),
                format_number(step.mean_clustering, 4), masked ? "yes" : "NO"});
    }
    mt.print(std::cout);
    if (mask_curve.threshold_fraction >= 0.0)
        std::cout << "masking threshold: "
                  << format_number(mask_curve.threshold_fraction, 3)
                  << " of planes — attacks below this fraction degrade "
                     "service, attacks past it fragment the network\n";
    else
        std::cout << "masking threshold: none up to "
                  << format_number(mask_opts.max_fraction, 3)
                  << " — the wiring masks every probed attack fraction\n";

    // --- Why timelines matter: the same total loss hurts very differently
    // depending on WHEN it lands. Replay the cascade's final failure set as
    // a one-shot draw at t=0 and put the two delivered-throughput-vs-time
    // traces side by side — the cascade keeps delivering while it unfolds.
    const auto& cascade_timeline = context.timeline(cascade);
    const auto final_mask =
        cascade_timeline.step(cascade_timeline.n_steps - 1);
    const auto one_shot = traffic::run_traffic_sweep_masked(
        context.builder(), context.offsets(), context.positions(),
        {final_mask.begin(), final_mask.end()}, demand, traffic_opts);
    int cascade_row = 0;
    for (std::size_t r = 0; r < campaign.rows.size(); ++r)
        if (campaign.rows[r].name == "kessler cascade")
            cascade_row = static_cast<int>(r);
    const auto& cascade_traffic =
        exp::traffic_engine::detail(campaign.cell(cascade_row, traffic_e));

    std::cout << "\ndelivered throughput vs time: cascade ("
              << cascade_timeline.final_n_failed()
              << " losses unfolding over the day) vs one-shot draw of the "
                 "same satellites at t=0:\n";
    table_printer ct({"t_h", "cascade_failed", "cascade_delivered_frac",
                      "one_shot_delivered_frac"});
    const std::size_t n_steps = context.offsets().size();
    const std::size_t stride = std::max<std::size_t>(1, n_steps / 12);
    for (std::size_t i = 0; i < n_steps; i += stride) {
        ct.row({format_number(context.offsets()[i] / 3600.0, 3),
                std::to_string(cascade_timeline.n_failed_at(static_cast<int>(i))),
                format_number(cascade_traffic.step_delivered_fraction[i], 4),
                format_number(one_shot.step_delivered_fraction[i], 4)});
    }
    ct.print(std::cout);

    // --- Gateway aggregate vs user experience under the SAME cascade: the
    // gateway-level delivered fraction can look healthy while individual
    // sessions are dropped or starved — that is exactly what the p99 floor
    // and per-step dropped counts expose.
    const auto& cascade_serving =
        exp::serving_engine::detail(campaign.cell(cascade_row, serving_e));
    std::cout << "\ngateway aggregate vs user-level SLO under the kessler "
                 "cascade:\n";
    table_printer gu({"t_h", "failed", "gateway_delivered_frac",
                      "user_served_frac", "user_p99_mbps", "users_dropped"});
    for (std::size_t i = 0; i < n_steps; i += stride) {
        gu.row({format_number(context.offsets()[i] / 3600.0, 3),
                std::to_string(cascade_timeline.n_failed_at(static_cast<int>(i))),
                format_number(cascade_traffic.step_delivered_fraction[i], 4),
                format_number(cascade_serving.step_served_fraction[i], 4),
                format_number(cascade_serving.step_p99_session_rate_mbps[i], 4),
                format_number(cascade_serving.step_sessions_dropped[i])});
    }
    gu.print(std::cout);

    // The whole campaign as one machine-readable table: scenario axes ->
    // every engine's named metric columns.
    std::cout << "\ncampaign CSV (scenario axes -> metric columns):\n";
    campaign.write_csv(std::cout);

    // Per-step degradation trajectories for every scenario — the timeline
    // counterpart of the scalar table above.
    std::cout << "\nper-step campaign CSV (scenario x step -> trace columns):\n";
    campaign.write_step_csv(std::cout);

    // Cache telemetry the campaign collected while it ran: how much work
    // the shared context actually saved.
    std::cout << "\ncontext cache telemetry:\n"
              << "  mask cache: " << campaign.cache.mask_hits << " hits / "
              << campaign.cache.mask_misses << " misses (hit rate "
              << format_number(campaign.cache.mask_hit_rate(), 4) << ")\n"
              << "  timeline cache: " << campaign.cache.timeline_hits
              << " hits / " << campaign.cache.timeline_misses
              << " misses (hit rate "
              << format_number(campaign.cache.timeline_hit_rate(), 4) << ")\n"
              << "  snapshot rebuilds: " << campaign.snapshot_builds << "\n";

    if (!trace_path.empty()) {
        obs::set_tracing_enabled(false);
        std::ofstream trace_out(trace_path);
        if (!trace_out) {
            std::cerr << "cannot write trace file: " << trace_path << "\n";
            return 1;
        }
        obs::write_chrome_trace(trace_out);
        std::cout << "\nwrote Chrome trace (" << obs::trace_snapshot().size()
                  << " spans) to " << trace_path << "\nphase summary:\n";
        obs::write_phase_summary(std::cout);
    }
    if (args.has("metrics")) {
        const std::string metrics_path = args.get("metrics", "");
        if (metrics_path.empty()) {
            std::cout << "\nmetrics registry:\n";
            obs::write_metrics_csv(std::cout);
        } else {
            std::ofstream metrics_out(metrics_path);
            if (!metrics_out) {
                std::cerr << "cannot write metrics file: " << metrics_path << "\n";
                return 1;
            }
            obs::write_metrics_csv(metrics_out);
            std::cout << "\nwrote metrics CSV to " << metrics_path << "\n";
        }
    }
    return 0;
}
