// Full mission design walkthrough: given a bandwidth target, produce the
// SS-plane constellation plan (plane LTANs, satellite counts), compare it
// against the Walker-delta baseline, and report radiation and sparing.
//
// Usage: design_mission [--bandwidth=50] [--altitude-km=560] [--min-elev-deg=30]
#include <algorithm>
#include <iostream>

#include "core/evaluator.h"
#include "lsn/failures.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/table.h"

using namespace ssplane;

int main(int argc, char** argv)
{
    const cli_args args(argc, argv);
    const double bandwidth = args.get_double("bandwidth", 50.0);
    const double altitude_m = args.get_double("altitude-km", 560.0) * 1000.0;
    const double min_elev = deg2rad(args.get_double("min-elev-deg", 30.0));

    std::cout << "=== SS-plane mission design ===\n"
              << "bandwidth multiplier: " << bandwidth
              << ", altitude: " << altitude_m / 1000.0 << " km\n\n";

    const demand::population_model population;
    const demand::demand_model demand(population);
    const auto problem = core::make_design_problem(demand, bandwidth, altitude_m, min_elev);

    // --- SS design ---
    const auto design = core::greedy_ss_cover(problem);
    std::cout << "SS design: " << design.planes.size() << " planes x "
              << design.sats_per_plane << " satellites = " << design.total_satellites
              << " total (demand satisfied: " << (design.satisfied ? "yes" : "no")
              << ")\n\n";

    // LTAN histogram of the plan (which local times the fleet occupies).
    std::vector<int> ltan_histogram(24, 0);
    for (const auto& p : design.planes)
        ltan_histogram[static_cast<std::size_t>(p.ltan_h)]++;
    table_printer ltan_table({"LTAN bin", "planes"});
    for (int h = 0; h < 24; ++h) {
        if (ltan_histogram[static_cast<std::size_t>(h)] == 0) continue;
        ltan_table.row({format_number(h) + ":00-" + format_number(h + 1) + ":00",
                        format_number(ltan_histogram[static_cast<std::size_t>(h)])});
    }
    ltan_table.print(std::cout);

    // --- Walker baseline ---
    core::walker_baseline_designer wd_designer;
    const auto baseline = wd_designer.design(problem);
    std::cout << "\nWalker-delta baseline: " << baseline.shells.size() << " shells, "
              << baseline.total_satellites << " satellites\n";
    if (!baseline.shells.empty()) {
        table_printer shells({"shell", "altitude_km", "inclination_deg", "planes",
                              "sats/plane"});
        const std::size_t show = std::min<std::size_t>(baseline.shells.size(), 6);
        for (std::size_t i = 0; i < show; ++i) {
            const auto& s = baseline.shells[i];
            shells.row({format_number(i + 1), format_number(s.altitude_m / 1000.0, 6),
                        format_number(rad2deg(s.parameters.inclination_rad), 4),
                        format_number(s.parameters.n_planes),
                        format_number(s.parameters.sats_per_plane)});
        }
        shells.print(std::cout);
        if (baseline.shells.size() > show)
            std::cout << "  ... and " << baseline.shells.size() - show
                      << " more shells\n";
    }

    // --- Radiation & sparing ---
    const radiation::radiation_environment env;
    const auto day = astro::instant::from_calendar(2014, 3, 15);
    core::radiation_eval_options rad;
    rad.step_s = 30.0;
    const auto ss_rad = core::ss_constellation_radiation(design, env, day, rad);
    const auto wd_rad = core::wd_constellation_radiation(baseline, env, day, rad);

    lsn::failure_model_options fail;
    const double ss_rate = lsn::annual_failure_rate(ss_rad.median_electron_fluence, fail);
    const double wd_rate = lsn::annual_failure_rate(wd_rad.median_electron_fluence, fail);
    const auto ss_spares =
        lsn::spares_for_availability(design.sats_per_plane, ss_rate, 0.999, fail, 1);
    const auto wd_spares = lsn::spares_for_availability(
        baseline.shells.empty() ? 20 : baseline.shells[0].parameters.sats_per_plane,
        wd_rate, 0.999, fail, 1);

    std::cout << "\n";
    table_printer cmp({"metric", "SS design", "WD baseline"});
    cmp.row({"satellites", format_number(design.total_satellites),
             format_number(baseline.total_satellites)});
    cmp.row({"median e- fluence (1/cm^2/MeV/day)",
             format_number(ss_rad.median_electron_fluence, 4),
             format_number(wd_rad.median_electron_fluence, 4)});
    cmp.row({"annual failure rate", format_number(ss_rate, 4),
             format_number(wd_rate, 4)});
    cmp.row({"spares/plane for 99.9%", format_number(ss_spares.spares),
             format_number(wd_spares.spares)});
    cmp.print(std::cout);

    std::cout << "\nsatellite saving: "
              << 100.0 * (1.0 - static_cast<double>(design.total_satellites) /
                                    baseline.total_satellites)
              << "%  |  electron-dose saving: "
              << 100.0 * (1.0 - ss_rad.median_electron_fluence /
                                    wd_rad.median_electron_fluence)
              << "%\n";
    return 0;
}
