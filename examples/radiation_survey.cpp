// Radiation survey tool: daily trapped-particle fluence for circular orbits
// across altitude and inclination, with the failure-rate and sparing
// implications (paper §3.2).
//
// Usage: radiation_survey [--altitude-km=560] [--date=2014-03-15]
#include <iostream>

#include "constellation/sun_sync.h"
#include "lsn/failures.h"
#include "radiation/fluence.h"
#include "radiation/solar_cycle.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/table.h"

using namespace ssplane;

int main(int argc, char** argv)
{
    const cli_args args(argc, argv);
    const double altitude_m = args.get_double("altitude-km", 560.0) * 1000.0;

    const radiation::radiation_environment env;
    const auto day = astro::instant::from_calendar(2014, 3, 15); // active period
    lsn::failure_model_options fail;

    std::cout << "=== Radiation survey at " << altitude_m / 1000.0
              << " km (solar cycle 24 active period) ===\n"
              << "activity index: " << radiation::solar_activity(day) << "\n\n";

    table_printer table({"inclination_deg", "electrons_1/cm2/MeV/day",
                         "protons_1/cm2/MeV/day", "annual_fail_rate",
                         "spares/plane@99.9%"});
    for (double inc : {30.0, 45.0, 53.0, 63.4, 65.0, 70.0, 80.0, 90.0, 97.6}) {
        const auto f =
            radiation::daily_fluence(env, altitude_m, deg2rad(inc), day, 0.0, 30.0);
        const double rate = lsn::annual_failure_rate(f.electrons_cm2_mev, fail);
        const auto spares = lsn::spares_for_availability(25, rate, 0.999, fail, 1, 128);
        table.row({format_number(inc, 4), format_number(f.electrons_cm2_mev, 4),
                   format_number(f.protons_cm2_mev, 4), format_number(rate, 3),
                   format_number(spares.spares)});
    }
    table.print(std::cout);

    std::cout << "\nAltitude sweep at the sun-synchronous inclination:\n";
    table_printer alt_table({"altitude_km", "ss_inclination_deg",
                             "electrons_1/cm2/MeV/day"});
    for (double h_km : {400.0, 560.0, 800.0, 1200.0, 1600.0}) {
        const double h = h_km * 1000.0;
        const auto inc = constellation::sun_synchronous_inclination_rad(h);
        if (!inc) continue;
        const auto f = radiation::daily_fluence(env, h, *inc, day, 0.0, 30.0);
        alt_table.row({format_number(h_km, 5), format_number(rad2deg(*inc), 5),
                       format_number(f.electrons_cm2_mev, 4)});
    }
    alt_table.print(std::cout);
    return 0;
}
