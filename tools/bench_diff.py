#!/usr/bin/env python3
"""Compare two BENCH_perf.json files (benchmark name -> ns/op).

Usage: bench_diff.py BASELINE.json CANDIDATE.json [--fail-above=RATIO]

Prints one row per benchmark with the candidate/baseline ratio; benchmarks
present in only one file are listed instead of silently dropped (renames and
new benchmarks should be visible in CI logs, not invisible). With
--fail-above=RATIO the exit code is 1 when any shared benchmark regressed by
more than that factor — by default the comparison is informational only,
since CI machines are too noisy to gate merges on wall time.

Stdlib only; no third-party imports.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as fh:
            data = json.load(fh)
    except (OSError, ValueError) as err:
        sys.exit(f"bench_diff: cannot read {path}: {err}")
    if not isinstance(data, dict):
        sys.exit(f"bench_diff: {path}: expected a JSON object of name -> ns/op")
    out = {}
    for name, ns in data.items():
        if isinstance(ns, (int, float)) and ns > 0:
            out[str(name)] = float(ns)
    return out


def fmt_ns(ns):
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return f"{ns / scale:.3g} {unit}"
    return f"{ns:.3g} ns"


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument(
        "--fail-above",
        type=float,
        default=None,
        metavar="RATIO",
        help="exit 1 when any shared benchmark's candidate/baseline "
        "ratio exceeds RATIO (e.g. 1.5)",
    )
    args = parser.parse_args()

    base = load(args.baseline)
    cand = load(args.candidate)
    shared = sorted(set(base) & set(cand))
    only_base = sorted(set(base) - set(cand))
    only_cand = sorted(set(cand) - set(base))

    width = max((len(n) for n in (*shared, *only_base, *only_cand)), default=9)
    print(f"{'benchmark':<{width}}  {'baseline':>10}  {'candidate':>10}  ratio")
    worst = None
    for name in shared:
        ratio = cand[name] / base[name]
        marker = "  <-- slower" if ratio > 1.10 else ("  <-- faster" if ratio < 0.90 else "")
        print(
            f"{name:<{width}}  {fmt_ns(base[name]):>10}  "
            f"{fmt_ns(cand[name]):>10}  {ratio:5.2f}x{marker}"
        )
        if worst is None or ratio > worst[1]:
            worst = (name, ratio)

    for name in only_base:
        print(f"{name:<{width}}  {fmt_ns(base[name]):>10}  {'-':>10}  (baseline only)")
    for name in only_cand:
        print(f"{name:<{width}}  {'-':>10}  {fmt_ns(cand[name]):>10}  (candidate only)")

    if not shared:
        print("bench_diff: no shared benchmarks to compare")
        return 0
    print(f"worst ratio: {worst[0]} at {worst[1]:.2f}x")
    if args.fail_above is not None and worst[1] > args.fail_above:
        print(
            f"bench_diff: FAIL — {worst[0]} regressed {worst[1]:.2f}x "
            f"(> {args.fail_above:.2f}x)"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
