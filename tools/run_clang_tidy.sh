#!/usr/bin/env bash
# Run the repo's clang-tidy baseline (.clang-tidy) over src/ and
# tools/detlint/ (fixtures excluded: they are deliberately pathological
# lint inputs, not shipped code).
#
# Usage: tools/run_clang_tidy.sh [build-dir]
#
# The build dir must hold a compile_commands.json; one is configured on the
# fly into build-tidy/ when absent. Exits 0 with a notice when clang-tidy
# is not installed, so local runs on minimal toolchains degrade gracefully
# — the clang-tidy CI leg installs it and is the enforcement point.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-}"

tidy_bin="${CLANG_TIDY:-}"
if [[ -z "$tidy_bin" ]]; then
    for candidate in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
                     clang-tidy-15 clang-tidy-14; do
        if command -v "$candidate" >/dev/null 2>&1; then
            tidy_bin="$candidate"
            break
        fi
    done
fi
if [[ -z "$tidy_bin" ]]; then
    echo "run_clang_tidy: clang-tidy not found on PATH; skipping (the CI" \
         "clang-tidy leg enforces the baseline)" >&2
    exit 0
fi

if [[ -z "$build_dir" ]]; then
    build_dir="$repo_root/build-tidy"
    cmake -S "$repo_root" -B "$build_dir" \
          -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi
if [[ ! -f "$build_dir/compile_commands.json" ]]; then
    echo "run_clang_tidy: $build_dir has no compile_commands.json;" \
         "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
    exit 2
fi

mapfile -t sources < <(find "$repo_root/src" "$repo_root/tools/detlint" \
                            -name '*.cpp' -not -path '*/fixtures/*' | sort)

echo "run_clang_tidy: $tidy_bin over ${#sources[@]} files" >&2
"$tidy_bin" -p "$build_dir" --quiet "${sources[@]}"
echo "run_clang_tidy: clean" >&2
