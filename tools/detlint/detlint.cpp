#include "detlint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <sstream>
#include <stdexcept>

namespace detlint {

namespace {

// --- Source model ----------------------------------------------------------

/// One scrubbed translation unit. `code` is the file with comment bodies and
/// string/char literal contents blanked to spaces (lengths preserved, so
/// column arithmetic and line mapping stay exact); `comments` holds the
/// comment text per line for DETLINT-ALLOW parsing.
struct source_file {
    std::string path;
    std::vector<std::string> code;
    std::vector<std::string> comments;
    /// Line-joined `code` with '\n' separators, for multi-line matching.
    std::string joined;
    /// joined offset -> 0-based line index (size joined.size() + 1).
    std::vector<int> line_of;
    /// (line, check-id) pairs covered by a DETLINT-ALLOW annotation.
    std::set<std::pair<int, std::string>> allows;
};

void split_lines(const std::string& text, std::vector<std::string>& out)
{
    std::string line;
    for (const char c : text) {
        if (c == '\n') {
            out.push_back(line);
            line.clear();
        } else {
            line.push_back(c);
        }
    }
    out.push_back(line);
}

/// Comment/string scrubber: a plain state machine over the raw text.
/// Handles //, /* */, "..." with escapes, '...' with escapes, and raw
/// string literals R"delim(...)delim".
void scrub(const std::string& raw, std::string& code_text,
           std::vector<std::string>& comment_lines)
{
    enum class state { normal, line_comment, block_comment, str, chr, raw_str };
    state st = state::normal;
    std::string code;
    code.reserve(raw.size());
    std::string comment_acc;
    std::vector<std::string> comments;
    std::string raw_delim; // closing ")delim" of an active raw string

    const auto flush_comment_line = [&] {
        comments.push_back(comment_acc);
        comment_acc.clear();
    };

    for (std::size_t i = 0; i < raw.size(); ++i) {
        const char c = raw[i];
        const char next = i + 1 < raw.size() ? raw[i + 1] : '\0';
        if (c == '\n') {
            flush_comment_line();
            if (st == state::line_comment) st = state::normal;
            code.push_back('\n');
            continue;
        }
        switch (st) {
        case state::normal:
            if (c == '/' && next == '/') {
                st = state::line_comment;
                code.append("  ");
                ++i;
            } else if (c == '/' && next == '*') {
                st = state::block_comment;
                code.append("  ");
                ++i;
            } else if (c == '"') {
                // Raw string? Look back for R / u8R / LR / UR prefix.
                bool is_raw = false;
                if (!code.empty() && code.back() == 'R') {
                    std::size_t j = code.size() - 1;
                    // Reject identifiers ending in R (e.g. `VAR"x"` is not
                    // valid C++ anyway, but be conservative).
                    if (j == 0 || !(std::isalnum(static_cast<unsigned char>(
                                        code[j - 1])) ||
                                    code[j - 1] == '_'))
                        is_raw = true;
                    else if (j >= 1 && (code[j - 1] == 'u' || code[j - 1] == 'U' ||
                                        code[j - 1] == 'L' || code[j - 1] == '8'))
                        is_raw = true;
                }
                if (is_raw) {
                    std::string delim;
                    std::size_t j = i + 1;
                    while (j < raw.size() && raw[j] != '(') delim.push_back(raw[j++]);
                    raw_delim = ")" + delim + "\"";
                    st = state::raw_str;
                    code.push_back('"');
                    for (std::size_t k = i + 1; k <= j && k < raw.size(); ++k)
                        code.push_back(' ');
                    i = j;
                } else {
                    st = state::str;
                    code.push_back('"');
                }
            } else if (c == '\'') {
                // Digit separators (1'000'000) are not char literals.
                const bool digit_sep =
                    !code.empty() &&
                    std::isalnum(static_cast<unsigned char>(code.back())) &&
                    std::isalnum(static_cast<unsigned char>(next));
                code.push_back('\'');
                if (!digit_sep) st = state::chr;
            } else {
                code.push_back(c);
            }
            break;
        case state::line_comment:
            comment_acc.push_back(c);
            code.push_back(' ');
            break;
        case state::block_comment:
            if (c == '*' && next == '/') {
                st = state::normal;
                code.append("  ");
                ++i;
            } else {
                comment_acc.push_back(c);
                code.push_back(' ');
            }
            break;
        case state::str:
            if (c == '\\') {
                code.append("  ");
                ++i;
                if (next == '\0') break;
            } else if (c == '"') {
                st = state::normal;
                code.push_back('"');
            } else {
                code.push_back(' ');
            }
            break;
        case state::chr:
            if (c == '\\') {
                code.append("  ");
                ++i;
                if (next == '\0') break;
            } else if (c == '\'') {
                st = state::normal;
                code.push_back('\'');
            } else {
                code.push_back(' ');
            }
            break;
        case state::raw_str:
            if (raw.compare(i, raw_delim.size(), raw_delim) == 0) {
                st = state::normal;
                for (std::size_t k = 0; k < raw_delim.size() - 1; ++k)
                    code.push_back(' ');
                code.push_back('"');
                i += raw_delim.size() - 1;
            } else {
                code.push_back(' ');
            }
            break;
        }
    }
    flush_comment_line();
    code_text = std::move(code);
    comment_lines = std::move(comments);
}

source_file load(const std::filesystem::path& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("detlint: cannot read " + path.string());
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string raw = buf.str();

    source_file file;
    file.path = path.generic_string();
    std::string code_text;
    scrub(raw, code_text, file.comments);
    split_lines(code_text, file.code);
    file.joined = code_text;
    file.line_of.resize(file.joined.size() + 1);
    int line = 0;
    for (std::size_t i = 0; i < file.joined.size(); ++i) {
        file.line_of[i] = line;
        if (file.joined[i] == '\n') ++line;
    }
    file.line_of[file.joined.size()] = line;

    // DETLINT-ALLOW(check): reason — covers its own line and, skipping
    // over the rest of a comment block or blank lines, the first code line
    // below, so both trailing and justification-block-above annotation
    // styles work. The reason text is mandatory.
    static const std::regex allow_re(
        R"(DETLINT-ALLOW\(([a-z0-9-]+)\)\s*:\s*\S)");
    const auto blank_code = [&](std::size_t ln) {
        return ln < file.code.size() &&
               file.code[ln].find_first_not_of(" \t") == std::string::npos;
    };
    for (std::size_t i = 0; i < file.comments.size(); ++i) {
        const std::string& comment = file.comments[i];
        auto begin = std::sregex_iterator(comment.begin(), comment.end(), allow_re);
        for (auto it = begin; it != std::sregex_iterator(); ++it) {
            file.allows.emplace(static_cast<int>(i), (*it)[1].str());
            std::size_t j = i + 1;
            while (blank_code(j)) ++j;
            file.allows.emplace(static_cast<int>(j), (*it)[1].str());
        }
    }
    return file;
}

// --- Small lexical helpers -------------------------------------------------

bool ident_char(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Offset just past the matching closer for the opener at `open` ('(' or
/// '<' or '{'); npos when unbalanced. Angle balancing is good enough for
/// template argument lists (no comparison operators inside ours).
std::size_t balance(const std::string& text, std::size_t open, char lhs, char rhs)
{
    int depth = 0;
    for (std::size_t i = open; i < text.size(); ++i) {
        if (text[i] == lhs) ++depth;
        else if (text[i] == rhs && --depth == 0) return i + 1;
    }
    return std::string::npos;
}

std::size_t skip_ws(const std::string& text, std::size_t i)
{
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i])))
        ++i;
    return i;
}

std::string read_ident(const std::string& text, std::size_t i)
{
    std::size_t end = i;
    while (end < text.size() && ident_char(text[end])) ++end;
    return text.substr(i, end - i);
}

/// Split a call argument list on top-level commas.
std::vector<std::string> split_args(const std::string& args)
{
    std::vector<std::string> out;
    int depth = 0;
    std::string cur;
    for (const char c : args) {
        if (c == '(' || c == '[' || c == '{' || c == '<') ++depth;
        if (c == ')' || c == ']' || c == '}' || c == '>') --depth;
        if (c == ',' && depth == 0) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    out.push_back(cur);
    for (auto& a : out) {
        const std::size_t b = a.find_first_not_of(" \t\n");
        const std::size_t e = a.find_last_not_of(" \t\n");
        a = b == std::string::npos ? std::string() : a.substr(b, e - b + 1);
    }
    return out;
}

struct reporter {
    const source_file& file;
    const std::string check;
    std::vector<finding>& out;
    /// Set by checks with a sanctioned-module path allowlist (wall-clock +
    /// obs/clock.*): every finding in the file reports as suppressed.
    bool path_exempt = false;

    void at_line(int line0, std::string message) const
    {
        finding f;
        f.file = file.path;
        f.line = line0 + 1;
        f.check = check;
        f.message = std::move(message);
        f.suppressed = path_exempt || file.allows.count({line0, check}) > 0;
        out.push_back(std::move(f));
    }
    void at_offset(std::size_t offset, std::string message) const
    {
        at_line(file.line_of[std::min(offset, file.joined.size())],
                std::move(message));
    }
};

// --- Check: unordered-iteration -------------------------------------------

/// Variables (locals and members) declared with an unordered container type
/// in this file, with the declaration's offset.
std::vector<std::pair<std::string, std::size_t>> unordered_vars(
    const source_file& file)
{
    std::vector<std::pair<std::string, std::size_t>> vars;
    static const std::regex decl_re(R"((?:std::)?unordered_(?:map|set)\s*<)");
    const std::string& text = file.joined;
    for (auto it = std::sregex_iterator(text.begin(), text.end(), decl_re);
         it != std::sregex_iterator(); ++it) {
        const std::size_t open = static_cast<std::size_t>(it->position()) +
                                 static_cast<std::size_t>(it->length()) - 1;
        const std::size_t close = balance(text, open, '<', '>');
        if (close == std::string::npos) continue;
        std::size_t i = skip_ws(text, close);
        while (i < text.size() && (text[i] == '&' || text[i] == '*'))
            i = skip_ws(text, i + 1);
        const std::string name = read_ident(text, i);
        if (!name.empty() && !std::isdigit(static_cast<unsigned char>(name[0])))
            vars.emplace_back(name, static_cast<std::size_t>(it->position()));
    }
    return vars;
}

void check_unordered_iteration(const source_file& file,
                               std::vector<finding>& out)
{
    const reporter report{file, "unordered-iteration", out};
    std::set<std::string> seen;
    for (const auto& [var, decl_offset] : unordered_vars(file)) {
        // The declaration itself is a finding: unordered containers are
        // admitted only with a stated proof that iteration order cannot
        // leak (lookup-only use), via DETLINT-ALLOW.
        report.at_offset(
            decl_offset,
            "unordered container '" + var +
                "' declared: prove the use is lookup-only (iteration order "
                "never reaches results) with a DETLINT-ALLOW, or use an "
                "ordered/indexed structure");
        if (!seen.insert(var).second) continue;
        // Range-for over the container (possibly member-qualified).
        const std::regex range_re("for\\s*\\([^;)]*:[^;)]*\\b" + var +
                                  "\\s*\\)");
        // Explicit iterator walk. `.end()` alone is the find-sentinel
        // compare and stays legal; iteration starts at some begin().
        const std::regex iter_re("\\b" + var +
                                 "\\s*\\.\\s*c?r?begin\\s*\\(");
        const std::string& text = file.joined;
        for (auto it = std::sregex_iterator(text.begin(), text.end(), range_re);
             it != std::sregex_iterator(); ++it)
            report.at_offset(
                static_cast<std::size_t>(it->position()),
                "range-for over unordered container '" + var +
                    "': iteration order is implementation-defined and leaks "
                    "into anything order-sensitive; iterate a sorted/indexed "
                    "view instead");
        for (auto it = std::sregex_iterator(text.begin(), text.end(), iter_re);
             it != std::sregex_iterator(); ++it)
            report.at_offset(
                static_cast<std::size_t>(it->position()),
                "iterator walk over unordered container '" + var +
                    "': iteration order is implementation-defined; iterate a "
                    "sorted/indexed view instead");
    }
}

// --- Check: raw-rng --------------------------------------------------------

void check_raw_rng(const source_file& file, std::vector<finding>& out)
{
    const reporter report{file, "raw-rng", out};
    struct pattern {
        const char* re;
        const char* what;
    };
    static const pattern patterns[] = {
        {R"((^|[^:.\w])(?:std\s*::\s*)?rand\s*\()", "rand()"},
        {R"((^|[^:.\w])(?:std\s*::\s*)?srand\s*\()", "srand()"},
        {R"((^|[^:.\w])(?:std\s*::\s*)?drand48\s*\()", "drand48()"},
        {R"(\brandom_device\b)", "std::random_device"},
        {R"(\bmt19937(_64)?\b)", "std::mt19937"},
        {R"(\bminstd_rand0?\b)", "std::minstd_rand"},
        {R"(\bdefault_random_engine\b)", "std::default_random_engine"},
        {R"(\branlux\d+\b)", "std::ranlux"},
        {R"((^|[^:.\w])(?:std\s*::\s*)?time\s*\(\s*(0|NULL|nullptr)?\s*\))",
         "time(NULL)-style seeding"},
    };
    const std::string& text = file.joined;
    for (const pattern& p : patterns) {
        const std::regex re(p.re);
        for (auto it = std::sregex_iterator(text.begin(), text.end(), re);
             it != std::sregex_iterator(); ++it)
            report.at_offset(
                static_cast<std::size_t>(it->position()),
                std::string(p.what) +
                    ": randomness must flow through ssplane::rng (util/rng) "
                    "so every draw reproduces from the experiment seed");
    }
}

// --- Check: wall-clock -----------------------------------------------------

/// The one sanctioned wall-clock module: `obs/clock.{h,cpp}` quarantines
/// every timing read of the instrumentation subsystem (span timestamps feed
/// traces, never simulation results). Findings there are reported as
/// suppressed — visible under --include-suppressed, but not failures. The
/// suffix match is deliberately narrow: a `clock.cpp` anywhere else, or any
/// other file under obs/, still fires.
bool wall_clock_sanctioned(const std::string& path)
{
    static const char* const sanctioned[] = {"obs/clock.h", "obs/clock.cpp"};
    for (const char* suffix_cstr : sanctioned) {
        const std::string_view suffix(suffix_cstr);
        if (path.size() < suffix.size()) continue;
        if (path.compare(path.size() - suffix.size(), suffix.size(),
                         suffix) != 0)
            continue;
        // Must be a whole path segment: reject "blobs/clock.cpp".
        const std::size_t at = path.size() - suffix.size();
        if (at == 0 || path[at - 1] == '/') return true;
    }
    return false;
}

void check_wall_clock(const source_file& file, std::vector<finding>& out)
{
    reporter report{file, "wall-clock", out};
    report.path_exempt = wall_clock_sanctioned(file.path);
    struct pattern {
        const char* re;
        const char* what;
    };
    static const pattern patterns[] = {
        {R"(\b(system_clock|steady_clock|high_resolution_clock)\s*::\s*now\s*\()",
         "std::chrono clock read"},
        {R"((^|[^:.\w])(?:std\s*::\s*)?clock\s*\(\s*\))", "clock()"},
        {R"(\bgettimeofday\s*\()", "gettimeofday()"},
        {R"((^|[^:.\w])(?:std\s*::\s*)?(localtime|gmtime)\s*\()",
         "wall-calendar read"},
    };
    const std::string& text = file.joined;
    for (const pattern& p : patterns) {
        const std::regex re(p.re);
        for (auto it = std::sregex_iterator(text.begin(), text.end(), re);
             it != std::sregex_iterator(); ++it)
            report.at_offset(
                static_cast<std::size_t>(it->position()),
                std::string(p.what) +
                    ": simulation results must depend only on the scenario "
                    "epoch, never on wall-clock time");
    }
}

// --- Check: parallel-accumulation -----------------------------------------

/// Extents (offset ranges) of parallel_for / parallel_map call argument
/// lists in `file`.
std::vector<std::pair<std::size_t, std::size_t>> parallel_extents(
    const source_file& file)
{
    std::vector<std::pair<std::size_t, std::size_t>> extents;
    static const std::regex call_re(R"(\bparallel_(?:for|map))");
    const std::string& text = file.joined;
    for (auto it = std::sregex_iterator(text.begin(), text.end(), call_re);
         it != std::sregex_iterator(); ++it) {
        std::size_t i = static_cast<std::size_t>(it->position()) +
                        static_cast<std::size_t>(it->length());
        i = skip_ws(text, i);
        if (i < text.size() && text[i] == '<') { // parallel_map<T>(...)
            i = balance(text, i, '<', '>');
            if (i == std::string::npos) continue;
            i = skip_ws(text, i);
        }
        if (i >= text.size() || text[i] != '(') continue; // declaration etc.
        const std::size_t close = balance(text, i, '(', ')');
        if (close == std::string::npos) continue;
        extents.emplace_back(i + 1, close - 1);
    }
    return extents;
}

/// True when `name` is declared inside `extent` (a lambda-local variable):
/// some type-ish token directly precedes it and a declarator terminator
/// follows.
bool declared_inside(const std::string& extent, const std::string& name)
{
    const std::regex decl_re(
        "[A-Za-z_>\\]][&*\\s]+(?:const\\s+)?" + name + "\\s*[=;{]");
    return std::regex_search(extent, decl_re);
}

void check_parallel_accumulation(const source_file& file,
                                 std::vector<finding>& out)
{
    const reporter report{file, "parallel-accumulation", out};
    const std::string& text = file.joined;
    for (const auto& [begin, end] : parallel_extents(file)) {
        const std::string extent = text.substr(begin, end - begin);
        // Only by-reference captures can reach enclosing-scope state.
        if (extent.find("[&") == std::string::npos &&
            !std::regex_search(extent, std::regex(R"(\[[^\]]*&)")))
            continue;
        static const std::regex acc_re(R"((\+=|-=|\*=|/=))");
        for (auto it = std::sregex_iterator(extent.begin(), extent.end(), acc_re);
             it != std::sregex_iterator(); ++it) {
            // Walk left from the operator to recover the assigned lvalue.
            std::size_t pos = static_cast<std::size_t>(it->position());
            while (pos > 0 && std::isspace(static_cast<unsigned char>(
                                  extent[pos - 1])))
                --pos;
            std::size_t lv_end = pos;
            while (pos > 0 && (ident_char(extent[pos - 1]) ||
                               extent[pos - 1] == '.'))
                --pos;
            const std::string lvalue = extent.substr(pos, lv_end - pos);
            if (lvalue.empty() || !ident_char(lvalue[0])) continue;
            // Subscripted targets (out[i], slots[begin / chunk].x) are the
            // blessed per-index / per-chunk slot pattern.
            if (pos > 0 && extent[pos - 1] == ']') continue;
            const std::string base = lvalue.substr(0, lvalue.find('.'));
            if (declared_inside(extent, base)) continue;
            report.at_offset(
                begin + static_cast<std::size_t>(it->position()),
                "accumulation into '" + base +
                    "' captured by reference in a parallel body: racy, and "
                    "the floating-point reduction order depends on thread "
                    "timing; reduce into per-chunk partials combined in "
                    "chunk order instead");
        }
    }
}

// --- Check: ref-capture-task ----------------------------------------------

void check_ref_capture_task(const source_file& file, std::vector<finding>& out)
{
    const reporter report{file, "ref-capture-task", out};
    const std::string& text = file.joined;
    static const std::regex task_re(
        R"((?:\.|->)\s*submit\s*\(|std::thread(?:\s+\w+)?\s*[({])");
    for (auto it = std::sregex_iterator(text.begin(), text.end(), task_re);
         it != std::sregex_iterator(); ++it) {
        const std::size_t open =
            text.find_first_of("({", static_cast<std::size_t>(it->position()) +
                                         static_cast<std::size_t>(it->length()) -
                                         1);
        if (open == std::string::npos) continue;
        const char lhs = text[open];
        const std::size_t close =
            balance(text, open, lhs, lhs == '(' ? ')' : '}');
        if (close == std::string::npos) continue;
        const std::string extent = text.substr(open + 1, close - open - 2);
        static const std::regex capture_re(R"(\[([^\]\[]*)\]\s*[({])");
        for (auto cap = std::sregex_iterator(extent.begin(), extent.end(),
                                             capture_re);
             cap != std::sregex_iterator(); ++cap) {
            if ((*cap)[1].str().find('&') == std::string::npos) continue;
            report.at_offset(
                open + 1 + static_cast<std::size_t>(cap->position()),
                "by-reference capture [" + (*cap)[1].str() +
                    "] in a task handed to a raw thread primitive: no "
                    "structured join guards the referent; state the "
                    "synchronization story or capture by value");
        }
    }
}

// --- Check: split-purpose-collision ---------------------------------------

struct purpose_site {
    std::string name; ///< Constant name, or "<literal>" for inline numbers.
    std::string file;
    int line0 = 0;
};

void check_split_purpose(const std::vector<source_file>& files,
                         std::vector<finding>& out)
{
    std::map<unsigned long long, std::vector<purpose_site>> by_value;
    std::map<std::string, unsigned long long> named;

    static const std::regex decl_re(
        R"(constexpr\s+(?:std::)?uint64_t\s+(\w*purpose\w*)\s*=\s*(\d+))");
    for (const source_file& file : files) {
        const std::string& text = file.joined;
        for (auto it = std::sregex_iterator(text.begin(), text.end(), decl_re);
             it != std::sregex_iterator(); ++it) {
            const unsigned long long value = std::stoull((*it)[2].str());
            purpose_site site;
            site.name = (*it)[1].str();
            site.file = file.path;
            site.line0 =
                file.line_of[static_cast<std::size_t>(it->position())];
            by_value[value].push_back(site);
            named[site.name] = value;
        }
    }

    // Literal purposes passed straight into rng::split(seed, purpose, ...).
    static const std::regex call_re(R"(\brng\s*::\s*split\s*\()");
    for (const source_file& file : files) {
        const std::string& text = file.joined;
        for (auto it = std::sregex_iterator(text.begin(), text.end(), call_re);
             it != std::sregex_iterator(); ++it) {
            const std::size_t open = static_cast<std::size_t>(it->position()) +
                                     static_cast<std::size_t>(it->length()) - 1;
            const std::size_t close = balance(text, open, '(', ')');
            if (close == std::string::npos) continue;
            const auto args =
                split_args(text.substr(open + 1, close - open - 2));
            if (args.size() < 2) continue;
            const std::string& purpose = args[1];
            if (purpose.empty() ||
                !std::all_of(purpose.begin(), purpose.end(), [](char c) {
                    return std::isdigit(static_cast<unsigned char>(c));
                }))
                continue;
            purpose_site site;
            site.name = "<literal>";
            site.file = file.path;
            site.line0 =
                file.line_of[static_cast<std::size_t>(it->position())];
            by_value[std::stoull(purpose)].push_back(site);
        }
    }

    for (const auto& [value, sites] : by_value) {
        std::set<std::string> names;
        std::set<std::string> literal_files;
        for (const purpose_site& site : sites) {
            if (site.name == "<literal>")
                literal_files.insert(site.file);
            else
                names.insert(site.name);
        }
        // Collision: two different named constants, a literal aliasing a
        // named constant, or raw literals repeated across files. The same
        // constant reused at many call sites is the intended pattern.
        const bool collision = names.size() > 1 ||
                               (!names.empty() && !literal_files.empty()) ||
                               literal_files.size() > 1;
        if (!collision) continue;
        for (const purpose_site& site : sites) {
            // Reconstruct a reporter against the right file.
            finding f;
            f.file = site.file;
            f.line = site.line0 + 1;
            f.check = "split-purpose-collision";
            f.message = "rng::split purpose value " + std::to_string(value) +
                        " is claimed by multiple streams (" +
                        (site.name == "<literal>" ? "inline literal"
                                                  : "'" + site.name + "'") +
                        " among them): identical purposes produce identical "
                        "sub-streams, silently correlating draws";
            // Suppression lives with the file's allow table.
            for (const source_file& sf : files)
                if (sf.path == site.file)
                    f.suppressed =
                        sf.allows.count({site.line0, f.check}) > 0;
            out.push_back(std::move(f));
        }
    }
}

// --- Check: validate-coverage ---------------------------------------------

struct struct_def {
    std::string name;
    const source_file* file = nullptr;
    /// field name -> 0-based line of its declaration.
    std::vector<std::pair<std::string, int>> fields;
};

/// Fields of `struct name { ... };` found in `file` (first definition wins).
/// Lexical: depth-1 statements that end in ';' and carry no parentheses
/// before any '=' are data members; the declarator name is the last
/// identifier before '=', '{', '[' or ';'.
bool parse_struct(const source_file& file, const std::string& name,
                  struct_def& out)
{
    const std::regex def_re("\\bstruct\\s+" + name + "\\s*(?::[^{;]*)?\\{");
    std::smatch m;
    if (!std::regex_search(file.joined, m, def_re)) return false;
    const std::size_t open = static_cast<std::size_t>(m.position()) +
                             static_cast<std::size_t>(m.length()) - 1;
    const std::size_t close = balance(file.joined, open, '{', '}');
    if (close == std::string::npos) return false;

    out.name = name;
    out.file = &file;
    const std::string& text = file.joined;
    int depth = 0;
    bool in_fn_body = false; // a depth-0 '{' preceded by '(' in the stmt
    std::string stmt;
    std::size_t stmt_begin = open + 1;

    const auto emit_field = [&](const std::string& s, std::size_t begin_off) {
        // Member functions / usings / nested types are not fields.
        const std::size_t eq = s.find('=');
        const std::string head = eq == std::string::npos ? s : s.substr(0, eq);
        const bool fn = head.find('(') != std::string::npos;
        const bool skip =
            fn ||
            std::regex_search(
                s,
                std::regex(
                    R"(\b(using|typedef|static|friend|enum|struct|class|template|public|private|protected|operator)\b)"));
        if (skip) return;
        // Declarator name: last identifier of the head, before any
        // initializer brace or array bound.
        std::string h = head;
        const std::size_t brace = h.find('{');
        if (brace != std::string::npos) h = h.substr(0, brace);
        const std::size_t bracket = h.find('[');
        if (bracket != std::string::npos) h = h.substr(0, bracket);
        const std::size_t e = h.find_last_not_of(" \t\n");
        if (e == std::string::npos || !ident_char(h[e])) return;
        std::size_t b = e;
        while (b > 0 && ident_char(h[b - 1])) --b;
        const std::string field = h.substr(b, e - b + 1);
        // A lone identifier is a stray token, not `T name`.
        const bool has_type =
            b > 0 && h.find_last_not_of(" \t\n", b - 1) != std::string::npos;
        if (has_type && !std::isdigit(static_cast<unsigned char>(field[0])))
            out.fields.emplace_back(
                field, file.line_of[std::min(begin_off, file.joined.size())]);
    };

    for (std::size_t i = open + 1; i + 1 < close; ++i) {
        const char c = text[i];
        if (c == '{' || c == '(') {
            if (depth == 0) {
                // `name(args) ... {` opens a method body; `name{init}` and
                // `= {...}` are initializers and stay part of the field.
                if (c == '{' && stmt.find('(') != std::string::npos)
                    in_fn_body = true;
                stmt.push_back(c);
            }
            ++depth;
            continue;
        }
        if (c == '}' || c == ')') {
            --depth;
            if (depth < 0) break;
            if (depth == 0) {
                if (c == '}' && in_fn_body) {
                    // End of an inline method: discard it wholesale.
                    in_fn_body = false;
                    stmt.clear();
                    stmt_begin = i + 1;
                } else {
                    stmt.push_back(c);
                }
            }
            continue;
        }
        if (depth != 0) continue;
        if (c == ';') {
            emit_field(stmt, stmt_begin);
            stmt.clear();
            stmt_begin = i + 1;
            continue;
        }
        if (stmt.empty() && std::isspace(static_cast<unsigned char>(c))) {
            stmt_begin = i + 1; // first non-ws char owns the line number
            continue;
        }
        stmt.push_back(c);
    }
    return true;
}

/// Bodies of every `validate(const Name&...)` definition across `files`,
/// plus (one level deep) the bodies of same-file helper functions those
/// bodies call — validate() commonly factors shared arms out.
std::string validate_bodies(const std::vector<source_file>& files,
                            const std::string& name)
{
    std::string bodies;
    const std::regex def_re(
        "void\\s+validate\\s*\\(\\s*const\\s+(?:[\\w:]*::)?" + name +
        "\\s*&[^)]*\\)\\s*\\{");
    for (const source_file& file : files) {
        const std::string& text = file.joined;
        for (auto it = std::sregex_iterator(text.begin(), text.end(), def_re);
             it != std::sregex_iterator(); ++it) {
            const std::size_t open = static_cast<std::size_t>(it->position()) +
                                     static_cast<std::size_t>(it->length()) - 1;
            const std::size_t close = balance(text, open, '{', '}');
            if (close == std::string::npos) continue;
            const std::string body = text.substr(open, close - open);
            bodies += body;
            // Helper hop: called identifiers defined in the same file.
            static const std::regex call_re(R"((\w+)\s*\()");
            for (auto call = std::sregex_iterator(body.begin(), body.end(),
                                                  call_re);
                 call != std::sregex_iterator(); ++call) {
                const std::string callee = (*call)[1].str();
                if (callee == "validate" || callee == "expects") continue;
                const std::regex helper_re("\\b" + callee +
                                           "\\s*\\([^;{)]*\\)\\s*\\{");
                std::smatch hm;
                if (!std::regex_search(text, hm, helper_re)) continue;
                const std::size_t hopen =
                    static_cast<std::size_t>(hm.position()) +
                    static_cast<std::size_t>(hm.length()) - 1;
                const std::size_t hclose = balance(text, hopen, '{', '}');
                if (hclose != std::string::npos)
                    bodies += text.substr(hopen, hclose - hopen);
            }
        }
    }
    return bodies;
}

void check_validate_coverage(const std::vector<source_file>& files,
                             std::vector<finding>& out)
{
    // Structs under contract: any T with a `void validate(const T&` seen
    // anywhere in the linted set.
    std::set<std::string> contracted;
    static const std::regex sig_re(
        R"(void\s+validate\s*\(\s*const\s+([\w:]+)\s*&)");
    for (const source_file& file : files) {
        const std::string& text = file.joined;
        for (auto it = std::sregex_iterator(text.begin(), text.end(), sig_re);
             it != std::sregex_iterator(); ++it) {
            std::string name = (*it)[1].str();
            const std::size_t colon = name.rfind("::");
            if (colon != std::string::npos) name = name.substr(colon + 2);
            contracted.insert(name);
        }
    }

    for (const std::string& name : contracted) {
        struct_def def;
        bool found = false;
        for (const source_file& file : files)
            if (parse_struct(file, name, def)) {
                found = true;
                break;
            }
        if (!found) continue; // struct defined outside the linted set
        const std::string bodies = validate_bodies(files, name);
        if (bodies.empty()) continue; // declaration-only in the linted set
        for (const auto& [field, line0] : def.fields) {
            const std::regex mention("\\b" + field + "\\b");
            if (std::regex_search(bodies, mention)) continue;
            const reporter report{*def.file, "validate-coverage", out};
            report.at_line(line0,
                           "field '" + field + "' of " + name +
                               " is never mentioned by any validate() "
                               "overload: new knobs must be validated or "
                               "explicitly exempted");
        }
    }
}

// --- Driver ----------------------------------------------------------------

std::vector<std::filesystem::path> gather(const std::vector<std::string>& paths)
{
    namespace fs = std::filesystem;
    std::vector<fs::path> files;
    for (const std::string& p : paths) {
        const fs::path path(p);
        if (fs::is_directory(path)) {
            for (const auto& entry : fs::recursive_directory_iterator(path)) {
                if (!entry.is_regular_file()) continue;
                const std::string ext = entry.path().extension().string();
                if (ext == ".cpp" || ext == ".h" || ext == ".hpp" ||
                    ext == ".cc" || ext == ".cxx")
                    files.push_back(entry.path());
            }
        } else if (fs::is_regular_file(path)) {
            files.push_back(path);
        } else {
            throw std::runtime_error("detlint: no such file or directory: " + p);
        }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());
    return files;
}

} // namespace

const std::vector<check_info>& all_checks()
{
    static const std::vector<check_info> checks = {
        {"unordered-iteration",
         "iteration over std::unordered_map/set (order is "
         "implementation-defined)"},
        {"raw-rng", "randomness outside util/rng (rand, random_device, "
                    "mt19937, time seeding)"},
        {"wall-clock", "wall-clock reads in simulation code (chrono ::now, "
                       "clock, gettimeofday); obs/clock.{h,cpp} is the "
                       "sanctioned instrumentation-timing module"},
        {"parallel-accumulation",
         "compound assignment to by-ref-captured outer state inside "
         "parallel_for/parallel_map bodies"},
        {"ref-capture-task",
         "by-reference lambda capture handed to thread_pool::submit or "
         "std::thread"},
        {"split-purpose-collision",
         "two rng::split purpose streams sharing one value"},
        {"validate-coverage",
         "options/scenario struct fields missing from every validate() "
         "overload"},
    };
    return checks;
}

std::vector<finding> run(const std::vector<std::string>& paths,
                         const options& opts)
{
    const auto enabled = [&](const char* id) {
        return opts.checks.empty() || opts.checks.count(id) > 0;
    };

    std::vector<source_file> files;
    for (const auto& path : gather(paths)) files.push_back(load(path));

    std::vector<finding> findings;
    for (const source_file& file : files) {
        if (enabled("unordered-iteration"))
            check_unordered_iteration(file, findings);
        if (enabled("raw-rng")) check_raw_rng(file, findings);
        if (enabled("wall-clock")) check_wall_clock(file, findings);
        if (enabled("parallel-accumulation"))
            check_parallel_accumulation(file, findings);
        if (enabled("ref-capture-task")) check_ref_capture_task(file, findings);
    }
    if (enabled("split-purpose-collision"))
        check_split_purpose(files, findings);
    if (enabled("validate-coverage")) check_validate_coverage(files, findings);

    std::sort(findings.begin(), findings.end(),
              [](const finding& a, const finding& b) {
                  if (a.file != b.file) return a.file < b.file;
                  if (a.line != b.line) return a.line < b.line;
                  return a.check < b.check;
              });
    return findings;
}

} // namespace detlint
