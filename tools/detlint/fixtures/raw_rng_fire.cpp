// Fixture: raw-rng must fire on every non-util/rng randomness source.
#include <cstdlib>
#include <ctime>
#include <random>

int unseeded_noise()
{
    std::srand(static_cast<unsigned>(time(nullptr)));
    std::random_device device;
    std::mt19937 engine(device());
    std::default_random_engine fallback;
    return rand() + static_cast<int>(engine()) +
           static_cast<int>(fallback());
}
