// Fixture: the same wall-clock read as obs/clock.cpp but outside the obs/
// directory — the path exemption must NOT apply here, so this fires.
#include <chrono>

unsigned long long fixture_now_ns()
{
    return static_cast<unsigned long long>(
        std::chrono::steady_clock::now().time_since_epoch().count());
}
