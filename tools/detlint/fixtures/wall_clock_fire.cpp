// Fixture: wall-clock must fire on chrono ::now() and clock() reads.
#include <chrono>
#include <ctime>

double jittered_epoch()
{
    const auto now = std::chrono::system_clock::now();
    const auto tick = std::chrono::steady_clock::now();
    const double cpu = static_cast<double>(clock());
    return static_cast<double>(now.time_since_epoch().count()) +
           static_cast<double>(tick.time_since_epoch().count()) + cpu;
}
