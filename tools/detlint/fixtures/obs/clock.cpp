// Fixture: the sanctioned obs/clock.cpp path — wall-clock reads here are
// reported as suppressed without any DETLINT-ALLOW annotation.
#include <chrono>

unsigned long long fixture_now_ns()
{
    return static_cast<unsigned long long>(
        std::chrono::steady_clock::now().time_since_epoch().count());
}
