// Fixture: ref-capture-task must fire on by-reference captures handed to
// raw task primitives (thread_pool::submit, std::thread) and stay quiet on
// by-value captures.
#include <functional>
#include <thread>

struct pool {
    void submit(std::function<void()> task);
};

void leak_stack_reference(pool& workers)
{
    int counter = 0;
    workers.submit([&counter] { counter += 1; }); // dangles past this frame
    workers.submit([counter] { (void)counter; }); // fine: by value
    std::thread watcher([&] { (void)counter; });  // unjoined by-ref capture
    watcher.detach();
}
