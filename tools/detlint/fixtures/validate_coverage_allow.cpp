// Fixture: validate-coverage suppressed by DETLINT-ALLOW with a reason.
#include <cmath>
#include <stdexcept>

namespace fixture {

struct sweep_options {
    double step_s = 60.0;
    // DETLINT-ALLOW(validate-coverage): any 64-bit seed is valid.
    unsigned long long seed = 0;
};

void validate(const sweep_options& options)
{
    if (!(std::isfinite(options.step_s) && options.step_s > 0.0))
        throw std::invalid_argument("step must be positive");
}

} // namespace fixture
