// Fixture: ref-capture-task suppressed by DETLINT-ALLOW with a reason.
#include <functional>

struct pool {
    void submit(std::function<void()> task);
};

void structured_fanout(pool& workers, int& shared)
{
    // DETLINT-ALLOW(ref-capture-task): caller joins every task through the
    // completion latch before `shared` leaves scope; writes are disjoint.
    workers.submit([&shared] { shared = 1; });
}
