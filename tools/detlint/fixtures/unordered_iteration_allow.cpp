// Fixture: unordered-iteration suppressed by DETLINT-ALLOW with a reason.
#include <unordered_map>

int lookup_only(int key)
{
    // DETLINT-ALLOW(unordered-iteration): lookup-only cache; results never
    // depend on iteration order.
    std::unordered_map<int, int> cache;
    cache.emplace(key, key * 2);
    const auto it = cache.find(key);
    return it == cache.end() ? 0 : it->second;
}
