// Fixture: raw-rng suppressed by DETLINT-ALLOW with a reason.
#include <random>

unsigned entropy_probe()
{
    // DETLINT-ALLOW(raw-rng): diagnostics-only entropy probe; the value
    // never reaches any simulation result.
    std::random_device device;
    return device();
}
