// Fixture: parallel-accumulation suppressed by DETLINT-ALLOW with a reason.
#include <cstddef>
#include <functional>
#include <vector>

namespace ssplane {
void parallel_for(std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& body,
                  std::size_t chunk = 0);
}

long long guarded_count(const std::vector<int>& flags)
{
    long long hits = 0;
    ssplane::parallel_for(flags.size(), [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i)
            if (flags[i])
                // DETLINT-ALLOW(parallel-accumulation): integer count under
                // an external mutex held by the caller; order-independent.
                hits += 1;
    });
    return hits;
}
