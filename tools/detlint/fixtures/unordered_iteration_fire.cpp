// Fixture: unordered-iteration must fire on the declaration, the range-for
// and the iterator walk.
#include <unordered_map>
#include <unordered_set>
#include <vector>

double sum_values(const std::unordered_map<int, double>& unused);

double order_leak()
{
    std::unordered_map<int, double> by_id;
    by_id.emplace(1, 0.5);
    std::unordered_set<int> members;
    members.insert(7);

    double total = 0.0;
    std::vector<int> order;
    for (const auto& [id, value] : by_id) total += value; // order-sensitive
    for (auto it = members.begin(); it != members.end(); ++it)
        order.push_back(*it);
    return total + static_cast<double>(order.size());
}
