// Fixture: split-purpose-collision suppressed by DETLINT-ALLOW with a
// reason at both declaration sites.
#include <cstdint>

namespace ssplane {
struct rng {
    static rng split(std::uint64_t seed, std::uint64_t purpose,
                     std::uint64_t step = 0);
    double uniform();
};
}

namespace legacy {
// DETLINT-ALLOW(split-purpose-collision): frozen pre-rename alias of
// current::purpose_cascade; both names must keep replaying old draws.
constexpr std::uint64_t purpose_cascade_v0 = 3;
}
namespace current {
// DETLINT-ALLOW(split-purpose-collision): same stream as the frozen v0
// alias above, by design.
constexpr std::uint64_t purpose_cascade = 3;
}

double replay(std::uint64_t seed)
{
    return ssplane::rng::split(seed, current::purpose_cascade).uniform() +
           ssplane::rng::split(seed, legacy::purpose_cascade_v0).uniform();
}
