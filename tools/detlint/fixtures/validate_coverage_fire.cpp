// Fixture: validate-coverage must fire on the struct field no validate()
// overload ever mentions, and stay quiet on the covered ones.
#include <cmath>
#include <stdexcept>

namespace fixture {

struct sweep_options {
    double step_s = 60.0;
    int max_rounds = 4;
    double drop_threshold = 0.5; // never validated: must fire
};

void validate(const sweep_options& options)
{
    if (!(std::isfinite(options.step_s) && options.step_s > 0.0))
        throw std::invalid_argument("step must be positive");
    if (options.max_rounds < 1)
        throw std::invalid_argument("need at least one round");
}

} // namespace fixture
