// Fixture: wall-clock suppressed by DETLINT-ALLOW with a reason.
#include <chrono>

long long bench_timestamp()
{
    // DETLINT-ALLOW(wall-clock): bench harness timing only; never feeds a
    // simulation result.
    const auto start = std::chrono::steady_clock::now();
    return start.time_since_epoch().count();
}
