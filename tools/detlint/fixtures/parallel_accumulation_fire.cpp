// Fixture: parallel-accumulation must fire on compound assignment to
// by-reference-captured enclosing state inside a parallel body, and stay
// quiet on lambda-local accumulators and per-index/per-chunk slots.
#include <cstddef>
#include <functional>
#include <vector>

namespace ssplane {
void parallel_for(std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& body,
                  std::size_t chunk = 0);
}

double racy_reduction(const std::vector<double>& samples)
{
    double total = 0.0;
    std::vector<double> slots(samples.size());
    ssplane::parallel_for(samples.size(), [&](std::size_t begin, std::size_t end) {
        double local = 0.0; // fine: declared inside the body
        for (std::size_t i = begin; i < end; ++i) {
            local += samples[i];
            slots[i] += samples[i]; // fine: per-index slot
            total += samples[i];    // racy, order-dependent
        }
        slots[begin] += local; // fine: per-chunk slot
    });
    return total;
}
