// Fixture: split-purpose-collision must fire when two named purpose
// streams share a value and when an inline literal aliases a named one.
#include <cstdint>

namespace ssplane {
struct rng {
    static rng split(std::uint64_t seed, std::uint64_t purpose,
                     std::uint64_t step = 0);
    double uniform();
};
}

namespace cascade {
constexpr std::uint64_t purpose_debris = 7;
}
namespace storm {
constexpr std::uint64_t purpose_flux = 7; // collides with purpose_debris
}

double correlated_draws(std::uint64_t seed)
{
    auto a = ssplane::rng::split(seed, cascade::purpose_debris);
    auto b = ssplane::rng::split(seed, storm::purpose_flux);
    auto c = ssplane::rng::split(seed, 7); // literal aliasing both
    return a.uniform() + b.uniform() + c.uniform();
}
