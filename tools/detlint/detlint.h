// detlint — the determinism contract of this codebase, as a linter.
//
// Every sweep, campaign and timeline must be bit-identical across
// SSPLANE_THREADS {1,2,4} and across machines. The runtime regression tests
// sample a handful of configurations; detlint enforces the *source-level*
// contract that makes those tests representative, at analysis time:
//
//   unordered-iteration      iteration over std::unordered_map/set — the
//                            iteration order is implementation-defined, so
//                            any result derived from it is nondeterministic.
//                            Point lookups (find/emplace/at/[]) are fine.
//   raw-rng                  randomness outside util/rng: rand(), srand(),
//                            std::random_device, std::mt19937 & friends,
//                            time(0)-style seeding. All draws must flow
//                            through ssplane::rng so seeds reproduce.
//   wall-clock               wall-clock reads (chrono ::now(), clock(),
//                            gettimeofday) in simulation code — results
//                            must depend only on the scenario epoch.
//   parallel-accumulation    compound assignment (+=, -=, *=, /=) to a
//                            variable declared outside a parallel_for /
//                            parallel_map body that captures by reference:
//                            a data race, and even when benign the FP
//                            reduction order depends on thread timing. Use
//                            per-chunk partials combined in chunk order
//                            (see radiation/fluence.cpp) or per-index slots.
//   ref-capture-task         a lambda with a by-reference capture handed to
//                            a raw task primitive (thread_pool::submit,
//                            std::thread) — unlike parallel_for bodies these
//                            have no structured join, so every by-ref
//                            capture needs a stated synchronization story.
//   split-purpose-collision  two rng::split purpose constants with the same
//                            value, or a raw literal purpose aliasing a
//                            named one: the sub-streams would be identical,
//                            silently correlating draws.
//   validate-coverage        a field of an options/scenario struct that has
//                            a `void validate(const T&)` contract but is
//                            never mentioned in any validate overload (or
//                            the helpers they call) — new knobs must either
//                            be validated or explicitly exempted.
//
// Escape hatch: a finding is suppressed by a comment on the same line or
// the line above:
//
//     // DETLINT-ALLOW(check-id): reason the pattern is safe here
//
// The reason is mandatory — an empty justification does not suppress.
#ifndef SSPLANE_TOOLS_DETLINT_H
#define SSPLANE_TOOLS_DETLINT_H

#include <set>
#include <string>
#include <vector>

namespace detlint {

struct finding {
    std::string file;
    int line = 0;          ///< 1-based.
    std::string check;     ///< Check id, e.g. "unordered-iteration".
    std::string message;
    bool suppressed = false; ///< A DETLINT-ALLOW covers this site.
};

struct check_info {
    std::string id;
    std::string summary;
};

/// Registry of every check, in stable report order.
const std::vector<check_info>& all_checks();

struct options {
    /// Check ids to run; empty means all. Unknown ids are an error in the
    /// CLI and ignored here.
    std::set<std::string> checks;
};

/// Lint `paths` (files, or directories scanned recursively for *.h/*.cpp).
/// Returns every finding, suppressed ones included, sorted by (file, line,
/// check) — callers filter on `suppressed`. Throws std::runtime_error on
/// unreadable paths.
std::vector<finding> run(const std::vector<std::string>& paths,
                         const options& opts = {});

} // namespace detlint

#endif // SSPLANE_TOOLS_DETLINT_H
