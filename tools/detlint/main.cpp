// detlint CLI: lint files/directories against the determinism contract.
//
//   detlint [--check=id[,id...]] [--include-suppressed] [--list-checks] paths...
//
// Exit status: 0 clean, 1 unsuppressed findings, 2 usage or I/O error.
#include "detlint.h"

#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace {

void usage(std::FILE* out)
{
    std::fputs(
        "usage: detlint [--check=id[,id...]] [--include-suppressed]\n"
        "               [--list-checks] <file-or-directory>...\n"
        "\n"
        "Lints C++ sources against the ssplane determinism contract.\n"
        "Suppress a finding with a comment on its line or the line above:\n"
        "  // DETLINT-ALLOW(check-id): reason\n",
        out);
}

} // namespace

int main(int argc, char** argv)
{
    std::vector<std::string> paths;
    detlint::options opts;
    bool include_suppressed = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list-checks") {
            for (const auto& check : detlint::all_checks())
                std::printf("%-24s %s\n", check.id.c_str(),
                            check.summary.c_str());
            return 0;
        } else if (arg == "--include-suppressed") {
            include_suppressed = true;
        } else if (arg.rfind("--check=", 0) == 0) {
            std::string list = arg.substr(std::strlen("--check="));
            std::size_t begin = 0;
            while (begin <= list.size()) {
                const std::size_t comma = list.find(',', begin);
                const std::string id =
                    list.substr(begin, comma == std::string::npos
                                           ? std::string::npos
                                           : comma - begin);
                if (!id.empty()) {
                    bool known = false;
                    for (const auto& check : detlint::all_checks())
                        known = known || check.id == id;
                    if (!known) {
                        std::fprintf(stderr, "detlint: unknown check '%s'\n",
                                     id.c_str());
                        return 2;
                    }
                    opts.checks.insert(id);
                }
                if (comma == std::string::npos) break;
                begin = comma + 1;
            }
        } else if (arg == "--help" || arg == "-h") {
            usage(stdout);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "detlint: unknown option '%s'\n", arg.c_str());
            usage(stderr);
            return 2;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty()) {
        usage(stderr);
        return 2;
    }

    std::vector<detlint::finding> findings;
    try {
        findings = detlint::run(paths, opts);
    } catch (const std::exception& error) {
        std::fprintf(stderr, "%s\n", error.what());
        return 2;
    }

    int unsuppressed = 0;
    int suppressed = 0;
    for (const auto& f : findings) {
        if (f.suppressed) {
            ++suppressed;
            if (!include_suppressed) continue;
        } else {
            ++unsuppressed;
        }
        std::printf("%s:%d: [%s]%s %s\n", f.file.c_str(), f.line,
                    f.check.c_str(), f.suppressed ? " (suppressed)" : "",
                    f.message.c_str());
    }
    std::printf("detlint: %d finding(s), %d suppressed\n", unsuppressed,
                suppressed);
    return unsuppressed > 0 ? 1 : 0;
}
